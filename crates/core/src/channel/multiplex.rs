//! Aggregated broadcast channels (paper §2.7).
//!
//! A reliable/consistent channel multiplexes many instances of the
//! corresponding broadcast primitive: one live instance per sender,
//! reallocated with an incremented sequence number after each delivery.
//! These are *virtual* protocols — they add no network messages of their
//! own — and provide FIFO delivery per sender but no total order, making
//! them a cheap alternative to atomic broadcast (the paper measures them
//! at 4–6× faster).

use std::collections::BTreeMap;

use sintra_telemetry::{SnapshotWriter, StateSnapshot};

use crate::broadcast::{ConsistentBroadcast, ReliableBroadcast};
use crate::config::GroupContext;
use crate::ids::{PartyId, ProtocolId};
use crate::message::{Body, Payload, PayloadKind};
use crate::outgoing::Outgoing;

/// Interface shared by the two broadcast primitives, letting one channel
/// implementation multiplex either. Sealed within the crate.
pub trait BroadcastInstance {
    /// Creates an instance for a sender under a pid.
    fn create(pid: ProtocolId, ctx: GroupContext, sender: PartyId) -> Self;
    /// Starts the broadcast (sender only).
    fn start(&mut self, payload: Vec<u8>, out: &mut Outgoing);
    /// Processes a message.
    fn on_message(&mut self, from: PartyId, body: &Body, out: &mut Outgoing);
    /// The delivered payload, if any (non-consuming).
    fn result(&self) -> Option<&[u8]>;
}

impl BroadcastInstance for ReliableBroadcast {
    fn create(pid: ProtocolId, ctx: GroupContext, sender: PartyId) -> Self {
        ReliableBroadcast::new(pid, ctx, sender)
    }
    fn start(&mut self, payload: Vec<u8>, out: &mut Outgoing) {
        self.send(payload, out);
    }
    fn on_message(&mut self, from: PartyId, body: &Body, out: &mut Outgoing) {
        self.handle(from, body, out);
    }
    fn result(&self) -> Option<&[u8]> {
        self.delivered()
    }
}

impl BroadcastInstance for ConsistentBroadcast {
    fn create(pid: ProtocolId, ctx: GroupContext, sender: PartyId) -> Self {
        ConsistentBroadcast::new(pid, ctx, sender)
    }
    fn start(&mut self, payload: Vec<u8>, out: &mut Outgoing) {
        self.send(payload, out);
    }
    fn on_message(&mut self, from: PartyId, body: &Body, out: &mut Outgoing) {
        self.handle(from, body, out);
    }
    fn result(&self) -> Option<&[u8]> {
        self.delivered()
    }
}

/// A channel multiplexing per-sender broadcast instances.
///
/// Use the [`ReliableChannel`] and [`ConsistentChannel`] aliases.
#[derive(Debug)]
pub struct BroadcastChannel<B> {
    pid: ProtocolId,
    ctx: GroupContext,
    /// Live and future instances: (sender, seq) -> instance.
    instances: BTreeMap<(PartyId, u64), B>,
    /// Next sequence number expected to *deliver* from each sender.
    next_deliver: Vec<u64>,
    /// Deliveries completed out of order, held for FIFO release.
    held: Vec<BTreeMap<u64, Vec<u8>>>,
    /// Next sequence number for our own sends.
    next_send: u64,
    /// Maximum own broadcasts in flight (`None` = unbounded). SINTRA's
    /// Java sender effectively serialized its broadcasts (window 1); the
    /// testbed reproduction uses that setting.
    send_window: Option<usize>,
    /// Own payloads waiting for a window slot.
    send_queue: std::collections::VecDeque<(PayloadKind, Vec<u8>)>,
    /// Own broadcasts started but not yet locally delivered.
    own_in_flight: usize,
    deliveries: std::collections::VecDeque<Payload>,
    close_requested: bool,
    close_senders: std::collections::BTreeSet<PartyId>,
    closed: bool,
    closed_taken: bool,
}

/// A reliable channel: agreement per payload, FIFO per sender, no total
/// order.
pub type ReliableChannel = BroadcastChannel<ReliableBroadcast>;

/// A consistent channel: consistency per payload, FIFO per sender, no
/// total order (the cheapest SINTRA channel).
pub type ConsistentChannel = BroadcastChannel<ConsistentBroadcast>;

impl<B: BroadcastInstance> BroadcastChannel<B> {
    /// Opens a channel endpoint.
    pub fn new(pid: ProtocolId, ctx: GroupContext) -> Self {
        let n = ctx.n();
        BroadcastChannel {
            pid,
            ctx,
            instances: BTreeMap::new(),
            next_deliver: vec![0; n],
            held: vec![BTreeMap::new(); n],
            next_send: 0,
            send_window: None,
            send_queue: std::collections::VecDeque::new(),
            own_in_flight: 0,
            deliveries: std::collections::VecDeque::new(),
            close_requested: false,
            close_senders: std::collections::BTreeSet::new(),
            closed: false,
            closed_taken: false,
        }
    }

    /// Limits own broadcasts in flight (builder style). `1` models
    /// SINTRA's sequential sender; the default is unbounded.
    pub fn with_send_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must admit at least one broadcast");
        self.send_window = Some(window);
        self
    }

    /// The channel identifier.
    pub fn pid(&self) -> &ProtocolId {
        &self.pid
    }

    /// Whether `send` is currently allowed.
    pub fn can_send(&self) -> bool {
        !self.close_requested && !self.closed
    }

    fn instance_pid(&self, sender: PartyId, seq: u64) -> ProtocolId {
        self.pid.child(format!("{}/{}", sender.0, seq))
    }

    fn instance(&mut self, sender: PartyId, seq: u64) -> &mut B {
        let pid = self.instance_pid(sender, seq);
        let ctx = self.ctx.clone();
        self.instances
            .entry((sender, seq))
            .or_insert_with(|| B::create(pid, ctx, sender))
    }

    /// Broadcasts a payload on this party's next instance.
    ///
    /// # Panics
    ///
    /// Panics after `close` has been called.
    pub fn send(&mut self, data: Vec<u8>, out: &mut Outgoing) {
        assert!(self.can_send(), "channel is closing or closed");
        self.send_queue.push_back((PayloadKind::App, data));
        self.pump_sends(out);
        self.harvest(out);
    }

    /// Sends a termination request as this party's last message.
    pub fn close(&mut self, out: &mut Outgoing) {
        if self.close_requested || self.closed {
            return;
        }
        self.close_requested = true;
        self.send_queue.push_back((PayloadKind::Close, Vec::new()));
        self.pump_sends(out);
        self.harvest(out);
    }

    /// Starts queued own broadcasts while the send window has room.
    fn pump_sends(&mut self, out: &mut Outgoing) {
        while !self.closed && self.send_window.is_none_or(|w| self.own_in_flight < w) {
            let Some((kind, data)) = self.send_queue.pop_front() else {
                return;
            };
            let me = self.ctx.me();
            let seq = self.next_send;
            self.next_send += 1;
            self.own_in_flight += 1;
            let framed = frame(kind, &data);
            let inst = self.instance(me, seq);
            inst.start(framed, out);
        }
    }

    /// Whether a delivery is waiting.
    pub fn can_receive(&self) -> bool {
        !self.deliveries.is_empty()
    }

    /// Takes the next delivered payload (FIFO per sender).
    pub fn take_delivery(&mut self) -> Option<Payload> {
        self.deliveries.pop_front()
    }

    /// Whether the channel has terminated.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Returns `true` exactly once upon termination.
    pub fn take_closed(&mut self) -> bool {
        if self.closed && !self.closed_taken {
            self.closed_taken = true;
            true
        } else {
            false
        }
    }

    /// Processes a message addressed to one of the broadcast instances.
    pub fn handle(&mut self, from: PartyId, msg_pid: &ProtocolId, body: &Body, out: &mut Outgoing) {
        if self.closed || !self.ctx.is_valid_party(from) {
            return;
        }
        let Some((sender, seq)) = self.parse_child(msg_pid) else {
            return;
        };
        if sender.0 >= self.ctx.n() || seq < self.next_deliver[sender.0] {
            return;
        }
        // Bound lookahead per sender so a malicious sender cannot force
        // unbounded instance allocation.
        if seq > self.next_deliver[sender.0] + 64 {
            return;
        }
        let inst = self.instance(sender, seq);
        inst.on_message(from, body, out);
        self.harvest(out);
    }

    fn parse_child(&self, msg_pid: &ProtocolId) -> Option<(PartyId, u64)> {
        let rest = msg_pid.as_str().strip_prefix(self.pid.as_str())?;
        let rest = rest.strip_prefix('/')?;
        let (sender, seq) = rest.split_once('/')?;
        Some((PartyId(sender.parse().ok()?), seq.parse().ok()?))
    }

    /// Collects completed instances and releases deliveries in per-sender
    /// FIFO order.
    fn harvest(&mut self, out: &mut Outgoing) {
        // Move completed payloads into the holding area.
        let completed: Vec<((PartyId, u64), Vec<u8>)> = self
            .instances
            .iter()
            .filter_map(|(key, inst)| inst.result().map(|p| (*key, p.to_vec())))
            .collect();
        let me = self.ctx.me();
        for ((sender, seq), payload) in completed {
            self.instances.remove(&(sender, seq));
            if sender == me {
                // An own broadcast completed: free a window slot.
                self.own_in_flight = self.own_in_flight.saturating_sub(1);
            }
            if seq >= self.next_deliver[sender.0] {
                self.held[sender.0].insert(seq, payload);
            }
        }
        self.pump_sends(out);
        // Release in order.
        for s in 0..self.ctx.n() {
            while let Some(payload) = self.held[s].remove(&self.next_deliver[s]) {
                let seq = self.next_deliver[s];
                self.next_deliver[s] += 1;
                let Some((kind, data)) = unframe(&payload) else {
                    continue; // malformed framing from a corrupt sender
                };
                match kind {
                    PayloadKind::App => self.deliveries.push_back(Payload {
                        origin: PartyId(s),
                        seq,
                        kind,
                        data,
                    }),
                    PayloadKind::Close => {
                        self.close_senders.insert(PartyId(s));
                        if self.close_senders.len() > self.ctx.fault_budget() {
                            // Abort all still-active instances and stop.
                            self.instances.clear();
                            self.closed = true;
                            return;
                        }
                    }
                }
            }
        }
    }
}

impl<B: BroadcastInstance + StateSnapshot> StateSnapshot for BroadcastChannel<B> {
    fn has_pending_work(&self) -> bool {
        !self.closed
            && (!self.instances.is_empty()
                || !self.send_queue.is_empty()
                || self.held.iter().any(|h| !h.is_empty())
                || self.close_requested)
    }

    fn snapshot_json(&self) -> String {
        let held: u64 = self.held.iter().map(|h| h.len() as u64).sum();
        let mut w = SnapshotWriter::new(self.pid.as_str(), "broadcast-channel")
            .num("live_instances", self.instances.len() as u64)
            .nums("next_deliver", self.next_deliver.iter().copied())
            .num("held", held)
            .num("next_send", self.next_send)
            .num("send_queue", self.send_queue.len() as u64)
            .num("own_in_flight", self.own_in_flight as u64)
            .num("undrained_deliveries", self.deliveries.len() as u64)
            .flag("close_requested", self.close_requested)
            .num("close_senders", self.close_senders.len() as u64)
            .flag("closed", self.closed);
        // The instance each sender's FIFO is blocked on, if live: that is
        // the one worth inspecting in a stall.
        let blocking: Vec<String> = (0..self.ctx.n())
            .filter_map(|s| {
                self.instances
                    .get(&(PartyId(s), self.next_deliver[s]))
                    .map(StateSnapshot::snapshot_json)
            })
            .collect();
        if !blocking.is_empty() {
            w = w.raw("blocking_instances", &format!("[{}]", blocking.join(",")));
        }
        w.finish()
    }
}

fn frame(kind: PayloadKind, data: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(data.len() + 1);
    framed.push(match kind {
        PayloadKind::App => 0,
        PayloadKind::Close => 1,
    });
    framed.extend_from_slice(data);
    framed
}

fn unframe(framed: &[u8]) -> Option<(PayloadKind, Vec<u8>)> {
    let (&flag, rest) = framed.split_first()?;
    let kind = match flag {
        0 => PayloadKind::App,
        1 => PayloadKind::Close,
        _ => return None,
    };
    Some((kind, rest.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outgoing::Recipient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sintra_crypto::dealer::{deal, DealerConfig};
    use std::collections::VecDeque;
    use std::sync::Arc;

    fn group(n: usize, t: usize) -> Vec<GroupContext> {
        let mut rng = StdRng::seed_from_u64(41);
        deal(&DealerConfig::small(n, t), &mut rng)
            .unwrap()
            .into_iter()
            .map(|k| GroupContext::new(Arc::new(k)))
            .collect()
    }

    fn pump<B: BroadcastInstance>(chans: &mut [BroadcastChannel<B>], outs: Vec<(usize, Outgoing)>) {
        let n = chans.len();
        let mut queue: VecDeque<(PartyId, usize, ProtocolId, Body)> = VecDeque::new();
        let push = |queue: &mut VecDeque<_>, from: usize, mut out: Outgoing| {
            for (recipient, env) in out.drain() {
                match recipient {
                    Recipient::All => {
                        for to in 0..n {
                            queue.push_back((PartyId(from), to, env.pid.clone(), env.body.clone()));
                        }
                    }
                    Recipient::One(p) => queue.push_back((PartyId(from), p.0, env.pid, env.body)),
                }
            }
        };
        for (from, out) in outs {
            push(&mut queue, from, out);
        }
        while let Some((from, to, pid, body)) = queue.pop_front() {
            let mut out = Outgoing::new();
            chans[to].handle(from, &pid, &body, &mut out);
            push(&mut queue, to, out);
        }
    }

    fn collect<B: BroadcastInstance>(chan: &mut BroadcastChannel<B>) -> Vec<(usize, Vec<u8>)> {
        let mut got = Vec::new();
        while let Some(p) = chan.take_delivery() {
            got.push((p.origin.0, p.data));
        }
        got
    }

    #[test]
    fn reliable_channel_fifo_per_sender() {
        let ctxs = group(4, 1);
        let mut chans: Vec<ReliableChannel> = ctxs
            .iter()
            .map(|c| ReliableChannel::new(ProtocolId::new("rc"), c.clone()))
            .collect();
        let mut outs = Vec::new();
        for i in 0..3u8 {
            let mut out = Outgoing::new();
            chans[0].send(vec![i], &mut out);
            outs.push((0usize, out));
        }
        let mut out1 = Outgoing::new();
        chans[1].send(b"other".to_vec(), &mut out1);
        outs.push((1, out1));
        pump(&mut chans, outs);
        for (p, chan) in chans.iter_mut().enumerate() {
            let got = collect(chan);
            let from0: Vec<&Vec<u8>> = got
                .iter()
                .filter(|(s, _)| *s == 0)
                .map(|(_, d)| d)
                .collect();
            assert_eq!(from0, vec![&vec![0], &vec![1], &vec![2]], "party {p} FIFO");
            assert!(got.iter().any(|(s, d)| *s == 1 && d == b"other"));
        }
    }

    #[test]
    fn consistent_channel_delivers() {
        let ctxs = group(4, 1);
        let mut chans: Vec<ConsistentChannel> = ctxs
            .iter()
            .map(|c| ConsistentChannel::new(ProtocolId::new("cc"), c.clone()))
            .collect();
        let mut out = Outgoing::new();
        chans[2].send(b"hello".to_vec(), &mut out);
        chans[2].send(b"world".to_vec(), &mut out);
        pump(&mut chans, vec![(2, out)]);
        for (p, chan) in chans.iter_mut().enumerate() {
            assert_eq!(
                collect(chan),
                vec![(2, b"hello".to_vec()), (2, b"world".to_vec())],
                "party {p}"
            );
        }
    }

    #[test]
    fn close_with_t_plus_1_requests() {
        let ctxs = group(4, 1);
        let mut chans: Vec<ReliableChannel> = ctxs
            .iter()
            .map(|c| ReliableChannel::new(ProtocolId::new("rc-close"), c.clone()))
            .collect();
        let mut outs = Vec::new();
        for (i, chan) in chans.iter_mut().enumerate().take(2) {
            let mut out = Outgoing::new();
            chan.close(&mut out);
            outs.push((i, out));
        }
        pump(&mut chans, outs);
        for (i, chan) in chans.iter_mut().enumerate() {
            assert!(chan.is_closed(), "party {i}");
            assert!(chan.take_closed());
        }
    }

    #[test]
    fn single_close_keeps_channel_open() {
        let ctxs = group(4, 1);
        let mut chans: Vec<ConsistentChannel> = ctxs
            .iter()
            .map(|c| ConsistentChannel::new(ProtocolId::new("cc-open"), c.clone()))
            .collect();
        let mut out = Outgoing::new();
        chans[0].close(&mut out);
        pump(&mut chans, vec![(0, out)]);
        assert!(!chans[1].is_closed());
        // Others can still send and deliver.
        let mut out = Outgoing::new();
        chans[1].send(b"still works".to_vec(), &mut out);
        pump(&mut chans, vec![(1, out)]);
        assert_eq!(collect(&mut chans[2]), vec![(1, b"still works".to_vec())]);
    }

    #[test]
    fn lookahead_is_bounded() {
        let ctxs = group(4, 1);
        let mut chan = ReliableChannel::new(ProtocolId::new("rc-la"), ctxs[0].clone());
        // A message for a far-future instance must not allocate state.
        let far = ProtocolId::new("rc-la/1/1000");
        chan.handle(
            PartyId(1),
            &far,
            &Body::RbSend(b"flood".to_vec()),
            &mut Outgoing::new(),
        );
        assert!(chan.instances.is_empty());
    }

    /// Replica determinism regression: a channel endpoint is a pure
    /// function of its input message sequence. Two replicas fed the same
    /// messages must emit identical ordered deliveries *and* identical
    /// outgoing message streams — the BFT state-machine-replication
    /// contract. This is what the `BTreeMap` instance map (rather than a
    /// randomly-seeded `HashMap`) guarantees structurally; `sintra-lint`'s
    /// `determinism` rule keeps it that way.
    #[test]
    fn replicas_with_same_input_emit_identical_output() {
        let ctxs = group(4, 1);
        // Record the message stream party 3 observes in a multi-sender run.
        let mut chans: Vec<ReliableChannel> = ctxs
            .iter()
            .map(|c| ReliableChannel::new(ProtocolId::new("rc-det"), c.clone()))
            .collect();
        let mut outs = Vec::new();
        for (sender, chan) in chans.iter_mut().enumerate().take(3) {
            for k in 0..3u8 {
                let mut out = Outgoing::new();
                chan.send(vec![sender as u8, k], &mut out);
                outs.push((sender, out));
            }
        }
        let mut script: Vec<(PartyId, ProtocolId, Body)> = Vec::new();
        {
            let n = chans.len();
            let mut queue: VecDeque<(PartyId, usize, ProtocolId, Body)> = VecDeque::new();
            let push = |queue: &mut VecDeque<_>, from: usize, mut out: Outgoing| {
                for (recipient, env) in out.drain() {
                    match recipient {
                        Recipient::All => {
                            for to in 0..n {
                                queue.push_back((
                                    PartyId(from),
                                    to,
                                    env.pid.clone(),
                                    env.body.clone(),
                                ));
                            }
                        }
                        Recipient::One(p) => {
                            queue.push_back((PartyId(from), p.0, env.pid, env.body))
                        }
                    }
                }
            };
            for (from, out) in outs {
                push(&mut queue, from, out);
            }
            while let Some((from, to, pid, body)) = queue.pop_front() {
                if to == 3 {
                    script.push((from, pid.clone(), body.clone()));
                }
                let mut out = Outgoing::new();
                chans[to].handle(from, &pid, &body, &mut out);
                push(&mut queue, to, out);
            }
        }
        assert!(script.len() > 20, "script too small to be meaningful");
        // Replay the identical script into two fresh replicas of party 3.
        let run = |label: &str| {
            let mut chan = ReliableChannel::new(ProtocolId::new("rc-det"), ctxs[3].clone());
            let mut sent = Vec::new();
            let mut delivered = Vec::new();
            for (from, pid, body) in &script {
                let mut out = Outgoing::new();
                chan.handle(*from, pid, body, &mut out);
                for (recipient, env) in out.drain() {
                    sent.push((format!("{recipient:?}"), env.pid, env.body));
                }
                while let Some(p) = chan.take_delivery() {
                    delivered.push((p.origin, p.seq, p.data));
                }
            }
            assert!(!delivered.is_empty(), "{label}: no deliveries");
            (sent, delivered)
        };
        let (sent_a, delivered_a) = run("replica a");
        let (sent_b, delivered_b) = run("replica b");
        assert_eq!(sent_a, sent_b, "outgoing streams diverged");
        assert_eq!(delivered_a, delivered_b, "delivery order diverged");
    }

    #[test]
    #[should_panic(expected = "closing or closed")]
    fn send_after_close_panics() {
        let ctxs = group(4, 1);
        let mut chan = ReliableChannel::new(ProtocolId::new("rc-sac"), ctxs[0].clone());
        let mut out = Outgoing::new();
        chan.close(&mut out);
        chan.send(b"late".to_vec(), &mut out);
    }
}
