//! Secure causal atomic broadcast (paper §2.6).
//!
//! Payloads are encrypted under the channel's threshold public key before
//! entering the atomic channel, so their contents stay confidential until
//! their position in the total order is fixed — preserving *causality*
//! against a Byzantine adversary who could otherwise front-run in-flight
//! requests with derived ones. Once the atomic channel delivers a
//! ciphertext, every party releases a decryption share; `t + 1` shares
//! recover the plaintext, which is then delivered in order.
//!
//! The threshold cryptosystem (Shoup–Gennaro TDH2) is CCA2-secure, which
//! is what prevents mauling an observed ciphertext into a related one.

use std::collections::{BTreeMap, VecDeque};

use rand::Rng;
use sintra_crypto::thenc::{Ciphertext, DecryptionShare};
use sintra_telemetry::{SnapshotWriter, StateSnapshot};

use crate::channel::atomic::{AtomicChannel, AtomicChannelConfig};
use crate::config::GroupContext;
use crate::ids::{PartyId, ProtocolId};
use crate::invariant::OrInvariant;
use crate::message::{Body, Payload, PayloadKind};
use crate::outgoing::Outgoing;
use crate::wire::Wire;

/// State of one ordered ciphertext awaiting decryption.
#[derive(Debug)]
struct PendingDecryption {
    payload_meta: (PartyId, u64),
    ciphertext: Option<Ciphertext>,
    /// Verified shares by holder index.
    shares: BTreeMap<usize, DecryptionShare>,
    plaintext: Option<Vec<u8>>,
    /// A ciphertext that failed validation is skipped (a Byzantine sender
    /// ordered garbage).
    skipped: bool,
}

/// A secure causal atomic broadcast channel endpoint.
#[derive(Debug)]
pub struct SecureAtomicChannel {
    pid: ProtocolId,
    ctx: GroupContext,
    inner: AtomicChannel,
    /// Ordered ciphertexts in delivery order.
    pending: VecDeque<PendingDecryption>,
    /// Early decryption shares for ciphertexts we have not ordered yet.
    early_shares: BTreeMap<(PartyId, u64), Vec<DecryptionShare>>,
    /// Ciphertext-ordered notifications not yet drained.
    ordered_events: VecDeque<(PartyId, u64, Vec<u8>)>,
    deliveries: VecDeque<Payload>,
    closed_taken: bool,
}

impl SecureAtomicChannel {
    /// Opens a channel endpoint. The inner atomic channel runs under the
    /// child identifier `{pid}/ac`.
    pub fn new(pid: ProtocolId, ctx: GroupContext, config: AtomicChannelConfig) -> Self {
        let inner = AtomicChannel::new(pid.child("ac"), ctx.clone(), config);
        SecureAtomicChannel {
            pid,
            ctx,
            inner,
            pending: VecDeque::new(),
            early_shares: BTreeMap::new(),
            ordered_events: VecDeque::new(),
            deliveries: VecDeque::new(),
            closed_taken: false,
        }
    }

    /// The channel identifier.
    pub fn pid(&self) -> &ProtocolId {
        &self.pid
    }

    /// Encrypts a message for a secure channel without being a group
    /// member — all that is needed is the channel's public key (carried in
    /// the group's common key material). The result can be handed to any
    /// `t + 1` servers for [`Self::send_ciphertext`].
    pub fn encrypt<R: Rng + ?Sized>(
        ctx: &GroupContext,
        pid: &ProtocolId,
        message: &[u8],
        rng: &mut R,
    ) -> Vec<u8> {
        ctx.keys()
            .common
            .enc
            .encrypt(pid.as_bytes(), message, rng)
            .to_bytes()
    }

    /// Encrypts and sends a payload on the channel.
    ///
    /// # Panics
    ///
    /// Panics after `close` has been called.
    pub fn send<R: Rng + ?Sized>(&mut self, data: Vec<u8>, rng: &mut R, out: &mut Outgoing) {
        let ct = Self::encrypt(&self.ctx, &self.pid, &data, rng);
        self.inner.send(ct, out);
        self.pump(out);
    }

    /// Broadcasts an externally produced ciphertext (from
    /// [`Self::encrypt`]) without seeing the cleartext.
    ///
    /// # Panics
    ///
    /// Panics after `close` has been called.
    pub fn send_ciphertext(&mut self, ciphertext: Vec<u8>, out: &mut Outgoing) {
        self.inner.send(ciphertext, out);
        self.pump(out);
    }

    /// Requests channel termination.
    pub fn close(&mut self, out: &mut Outgoing) {
        self.inner.close(out);
        self.pump(out);
    }

    /// Whether `send` is currently allowed.
    pub fn can_send(&self) -> bool {
        self.inner.can_send()
    }

    /// Whether a decrypted delivery is waiting.
    pub fn can_receive(&self) -> bool {
        !self.deliveries.is_empty()
    }

    /// Takes the next decrypted payload, in total order.
    pub fn take_delivery(&mut self) -> Option<Payload> {
        self.deliveries.pop_front()
    }

    /// Whether an ordered-ciphertext notification is waiting (the
    /// `canReceiveCiphertext` of the Java API).
    pub fn can_receive_ciphertext(&self) -> bool {
        !self.ordered_events.is_empty()
    }

    /// Takes the next ordered-ciphertext notification: the point where a
    /// payload's position is fixed but its content still encrypted.
    pub fn take_ordered_ciphertext(&mut self) -> Option<(PartyId, u64, Vec<u8>)> {
        self.ordered_events.pop_front()
    }

    /// Whether the channel has terminated (inner channel closed and all
    /// ordered ciphertexts resolved).
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed() && self.pending.is_empty()
    }

    /// Returns `true` exactly once upon termination.
    pub fn take_closed(&mut self) -> bool {
        if self.is_closed() && !self.closed_taken {
            self.closed_taken = true;
            true
        } else {
            false
        }
    }

    /// Processes a message addressed to this channel or its inner atomic
    /// channel.
    pub fn handle(&mut self, from: PartyId, msg_pid: &ProtocolId, body: &Body, out: &mut Outgoing) {
        if !self.ctx.is_valid_party(from) {
            return;
        }
        if *msg_pid == self.pid {
            if let Body::ScShare { origin, seq, share } = body {
                self.on_share(*origin, *seq, share);
            }
        } else if msg_pid.is_self_or_descendant_of(self.inner.pid()) {
            self.inner.handle(from, msg_pid, body, out);
        }
        self.pump(out);
    }

    fn on_share(&mut self, origin: PartyId, seq: u64, share: &DecryptionShare) {
        // Find the pending slot; if the ciphertext is not ordered locally
        // yet, park the share.
        let slot = self
            .pending
            .iter_mut()
            .find(|p| p.payload_meta == (origin, seq));
        match slot {
            Some(p) if !p.skipped && p.plaintext.is_none() => {
                if let Some(ct) = &p.ciphertext {
                    if self.ctx.keys().common.enc.verify_share(ct, share) {
                        p.shares.insert(share.index, share.clone());
                    }
                }
            }
            Some(_) => {}
            None => {
                let parked = self.early_shares.entry((origin, seq)).or_default();
                // lint:allow(quorum-arithmetic): buffer bound (2n parked shares), not a protocol threshold
                if parked.len() < 2 * self.ctx.n() {
                    parked.push(share.clone());
                }
            }
        }
    }

    /// Moves data between the inner channel and the decryption layer.
    fn pump(&mut self, out: &mut Outgoing) {
        // 1. Ingest newly ordered ciphertexts.
        while let Some(payload) = self.inner.take_delivery() {
            let meta = (payload.origin, payload.seq);
            self.ordered_events
                .push_back((payload.origin, payload.seq, payload.data.clone()));
            let ct = Ciphertext::from_bytes(&payload.data).ok().filter(|ct| {
                // The label binds ciphertexts to this channel instance.
                ct.label == self.pid.as_bytes() && self.ctx.keys().common.enc.verify_ciphertext(ct)
            });
            let mut pending = PendingDecryption {
                payload_meta: meta,
                ciphertext: ct,
                shares: BTreeMap::new(),
                plaintext: None,
                skipped: false,
            };
            match &pending.ciphertext {
                Some(ct) => {
                    // Release our own decryption share.
                    if let Some(share) = self
                        .ctx
                        .keys()
                        .common
                        .enc
                        .decryption_share(ct, &self.ctx.keys().enc_secret)
                    {
                        pending.shares.insert(share.index, share.clone());
                        out.send_all(
                            &self.pid,
                            Body::ScShare {
                                origin: meta.0,
                                seq: meta.1,
                                share,
                            },
                        );
                    }
                    // Ingest parked shares.
                    if let Some(parked) = self.early_shares.remove(&meta) {
                        for share in parked {
                            if self.ctx.keys().common.enc.verify_share(ct, &share) {
                                pending.shares.insert(share.index, share);
                            }
                        }
                    }
                }
                None => pending.skipped = true,
            }
            self.pending.push_back(pending);
        }

        // 2. Combine where possible.
        let k = self.ctx.keys().common.enc.threshold();
        for p in self.pending.iter_mut() {
            if p.skipped || p.plaintext.is_some() {
                continue;
            }
            if p.shares.len() >= k {
                let ct = p
                    .ciphertext
                    .as_ref()
                    .or_invariant("unskipped pending entry lost its ciphertext");
                let shares: Vec<DecryptionShare> = p.shares.values().cloned().collect();
                if let Ok(plain) = self.ctx.keys().common.enc.combine(ct, &shares) {
                    p.plaintext = Some(plain);
                }
            }
        }

        // 3. Deliver strictly in order.
        while let Some(front) = self.pending.front() {
            if front.skipped {
                self.pending.pop_front();
            } else if front.plaintext.is_some() {
                let p = self
                    .pending
                    .pop_front()
                    .or_invariant("pending front vanished during release");
                self.deliveries.push_back(Payload {
                    origin: p.payload_meta.0,
                    seq: p.payload_meta.1,
                    kind: PayloadKind::App,
                    data: p
                        .plaintext
                        .or_invariant("released entry missing its plaintext"),
                });
            } else {
                break;
            }
        }
    }
}

impl StateSnapshot for SecureAtomicChannel {
    fn has_pending_work(&self) -> bool {
        self.inner.has_pending_work() || !self.pending.is_empty()
    }

    fn snapshot_json(&self) -> String {
        let k = self.ctx.keys().common.enc.threshold();
        let mut w = SnapshotWriter::new(self.pid.as_str(), "secure")
            .num("pending_decryptions", self.pending.len() as u64)
            .num("share_threshold", k as u64)
            .num("early_share_keys", self.early_shares.len() as u64)
            .num("undrained_deliveries", self.deliveries.len() as u64);
        if let Some(front) = self.pending.front() {
            w = w
                .num("front_origin", front.payload_meta.0 .0 as u64)
                .num("front_seq", front.payload_meta.1)
                .num("front_shares", front.shares.len() as u64)
                .flag("front_skipped", front.skipped);
        }
        w.raw("inner", &self.inner.snapshot_json()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outgoing::Recipient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sintra_crypto::dealer::{deal, DealerConfig};
    use std::sync::Arc;

    fn group(n: usize, t: usize) -> Vec<GroupContext> {
        let mut rng = StdRng::seed_from_u64(43);
        deal(&DealerConfig::small(n, t), &mut rng)
            .unwrap()
            .into_iter()
            .map(|k| GroupContext::new(Arc::new(k)))
            .collect()
    }

    fn channels(ctxs: &[GroupContext], tag: &str) -> Vec<SecureAtomicChannel> {
        ctxs.iter()
            .map(|c| {
                SecureAtomicChannel::new(
                    ProtocolId::new(tag),
                    c.clone(),
                    AtomicChannelConfig::default(),
                )
            })
            .collect()
    }

    fn pump_all(chans: &mut [SecureAtomicChannel], outs: Vec<(usize, Outgoing)>) {
        let n = chans.len();
        let mut queue: std::collections::VecDeque<(PartyId, usize, ProtocolId, Body)> =
            std::collections::VecDeque::new();
        let push = |queue: &mut std::collections::VecDeque<_>, from: usize, mut out: Outgoing| {
            for (recipient, env) in out.drain() {
                match recipient {
                    Recipient::All => {
                        for to in 0..n {
                            queue.push_back((PartyId(from), to, env.pid.clone(), env.body.clone()));
                        }
                    }
                    Recipient::One(p) => queue.push_back((PartyId(from), p.0, env.pid, env.body)),
                }
            }
        };
        for (from, out) in outs {
            push(&mut queue, from, out);
        }
        while let Some((from, to, pid, body)) = queue.pop_front() {
            let mut out = Outgoing::new();
            chans[to].handle(from, &pid, &body, &mut out);
            push(&mut queue, to, out);
        }
    }

    #[test]
    fn encrypted_payloads_deliver_in_order() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "sc");
        let mut rng = StdRng::seed_from_u64(99);
        let mut out = Outgoing::new();
        chans[0].send(b"first secret".to_vec(), &mut rng, &mut out);
        chans[0].send(b"second secret".to_vec(), &mut rng, &mut out);
        pump_all(&mut chans, vec![(0, out)]);
        for (i, chan) in chans.iter_mut().enumerate() {
            assert_eq!(
                chan.take_delivery().unwrap().data,
                b"first secret",
                "party {i}"
            );
            assert_eq!(chan.take_delivery().unwrap().data, b"second secret");
            assert!(chan.take_delivery().is_none());
        }
    }

    #[test]
    fn ciphertext_ordered_before_plaintext() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "sc-order");
        let mut rng = StdRng::seed_from_u64(100);
        let mut out = Outgoing::new();
        chans[1].send(b"confidential".to_vec(), &mut rng, &mut out);
        pump_all(&mut chans, vec![(1, out)]);
        let (origin, _seq, ct_bytes) = chans[2].take_ordered_ciphertext().unwrap();
        assert_eq!(origin, PartyId(1));
        // The ordered ciphertext reveals nothing recognizable.
        assert!(!ct_bytes
            .windows(b"confidential".len())
            .any(|w| w == b"confidential"));
        assert_eq!(chans[2].take_delivery().unwrap().data, b"confidential");
    }

    #[test]
    fn external_client_ciphertext() {
        // A non-member encrypts with only the public key; a member injects
        // the ciphertext without ever seeing the cleartext.
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "sc-ext");
        let mut rng = StdRng::seed_from_u64(101);
        let ct = SecureAtomicChannel::encrypt(
            &ctxs[3],
            &ProtocolId::new("sc-ext"),
            b"client request",
            &mut rng,
        );
        let mut out = Outgoing::new();
        chans[2].send_ciphertext(ct, &mut out);
        pump_all(&mut chans, vec![(2, out)]);
        assert_eq!(chans[0].take_delivery().unwrap().data, b"client request");
    }

    #[test]
    fn garbage_ciphertext_skipped() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "sc-garbage");
        let mut rng = StdRng::seed_from_u64(102);
        let mut out = Outgoing::new();
        // A Byzantine member orders garbage bytes; honest parties skip it
        // and the channel keeps working.
        chans[3].send_ciphertext(b"not a ciphertext".to_vec(), &mut out);
        chans[0].send(b"real".to_vec(), &mut rng, &mut out);
        pump_all(&mut chans, vec![(3, out)]);
        let mut datas = Vec::new();
        while let Some(p) = chans[1].take_delivery() {
            datas.push(p.data);
        }
        assert_eq!(datas, vec![b"real".to_vec()]);
    }

    #[test]
    fn replayed_ciphertext_across_channels_rejected() {
        // The label binds a ciphertext to its channel: a ciphertext for
        // channel A ordered on channel B is skipped, not decrypted.
        let ctxs = group(4, 1);
        let mut rng = StdRng::seed_from_u64(103);
        let ct_for_a = SecureAtomicChannel::encrypt(
            &ctxs[0],
            &ProtocolId::new("channel-A"),
            b"bound to A",
            &mut rng,
        );
        let mut chans_b = channels(&ctxs, "channel-B");
        let mut out = Outgoing::new();
        chans_b[0].send_ciphertext(ct_for_a, &mut out);
        pump_all(&mut chans_b, vec![(0, out)]);
        assert!(chans_b[1].take_delivery().is_none());
        // But the ordering event still happened (position consumed).
        assert!(chans_b[1].take_ordered_ciphertext().is_some());
    }

    #[test]
    fn close_after_decrypting_everything() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "sc-close");
        let mut rng = StdRng::seed_from_u64(104);
        let mut outs = Vec::new();
        let mut out0 = Outgoing::new();
        chans[0].send(b"last words".to_vec(), &mut rng, &mut out0);
        chans[0].close(&mut out0);
        outs.push((0usize, out0));
        let mut out1 = Outgoing::new();
        chans[1].close(&mut out1);
        outs.push((1, out1));
        pump_all(&mut chans, outs);
        for (i, chan) in chans.iter_mut().enumerate() {
            assert_eq!(
                chan.take_delivery().unwrap().data,
                b"last words",
                "party {i}"
            );
            assert!(chan.is_closed(), "party {i} closed");
            assert!(chan.take_closed());
        }
    }
}
