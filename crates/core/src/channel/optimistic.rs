//! An optimistic atomic broadcast channel (the paper's §6 "Optimized
//! protocols" future-work item, in the style of Castro–Liskov [5] and
//! Kursawe–Shoup [10]).
//!
//! The randomized atomic channel runs a multi-valued Byzantine agreement
//! every round, even when nothing is wrong. The optimistic channel instead
//! runs epochs with a designated *sequencer* (the leader, rotating by
//! epoch number):
//!
//! * **Fast path** — the leader assigns sequence numbers and disseminates
//!   each `(epoch, seq, payload)` assignment with one *reliable broadcast*
//!   ("reduce the cost of atomic broadcast essentially to a single
//!   reliable broadcast per delivered message"); parties then exchange two
//!   rounds of signed acknowledgements (prepare/commit, the PBFT pattern)
//!   and deliver at `n - t` commit acks, in sequence order.
//! * **Recovery** — when `t + 1` parties complain (a *liveness-only*
//!   timeout heuristic; no safety property depends on timing), parties
//!   exchange signed epoch states carrying their *prepared certificates*
//!   and agree on a closing cut with one multi-valued Byzantine agreement
//!   from the pessimistic stack. Quorum intersection guarantees the cut
//!   covers every payload any honest party fast-delivered. The next epoch
//!   starts under the next leader.
//!
//! As the paper notes (§5, discussing BFT), such protocols are no longer
//! *fully* asynchronous — the complaint timeout is a partial-synchrony
//! heuristic — but timeouts are confined to liveness; safety is untimed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sintra_crypto::rsa::RsaSignature;
use sintra_telemetry::{SnapshotWriter, StateSnapshot, TraceEvent};

use crate::agreement::{CandidateOrder, MultiValuedAgreement};
use crate::broadcast::ReliableBroadcast;
use crate::config::GroupContext;
use crate::ids::{PartyId, ProtocolId};
use crate::invariant::OrInvariant;
use crate::message::{
    payload_digest, statement_opt_ack, statement_opt_state, Body, Payload, PayloadKind,
};
use crate::outgoing::Outgoing;
use crate::validator::ArrayValidator;
use crate::wire::{Reader, Wire, WireError};

/// Configuration of an optimistic channel.
#[derive(Debug, Clone, Copy)]
pub struct OptimisticChannelConfig {
    /// Complaint timeout in (virtual or real) milliseconds: how long a
    /// party waits without progress, while work is outstanding, before
    /// suspecting the leader. Liveness heuristic only.
    pub complaint_timeout_ms: u64,
    /// Candidate order for the recovery agreement.
    pub recovery_order: CandidateOrder,
}

impl Default for OptimisticChannelConfig {
    fn default() -> Self {
        OptimisticChannelConfig {
            complaint_timeout_ms: 2_000,
            recovery_order: CandidateOrder::LocalRandom,
        }
    }
}

/// A payload with its leader-assigned slot and the prepared certificate
/// (`n - t` phase-1 acknowledgement signatures) proving the assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedEntry {
    /// Leader-assigned sequence number within the epoch.
    pub seq: u64,
    /// The ordered payload.
    pub payload: Payload,
    /// `(signer, signature)` pairs over the phase-1 ack statement.
    pub cert: Vec<(u32, RsaSignature)>,
}

impl Wire for PreparedEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.payload.encode(buf);
        buf.extend_from_slice(&(self.cert.len() as u32).to_be_bytes());
        for (idx, sig) in &self.cert {
            idx.encode(buf);
            sig.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = r.u64()?;
        let payload = Payload::decode(r)?;
        let len = r.u32()? as usize;
        if len > 1024 {
            return Err(WireError::LengthOverflow);
        }
        let mut cert = Vec::with_capacity(len);
        for _ in 0..len {
            cert.push((r.u32()?, RsaSignature::decode(r)?));
        }
        Ok(PreparedEntry { seq, payload, cert })
    }
}

/// A party's signed view of an epoch at recovery time: every entry it has
/// *prepared*, with certificates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochState {
    /// The epoch this state describes.
    pub epoch: u64,
    /// The state's author.
    pub sender: PartyId,
    /// Prepared entries, ascending by sequence number.
    pub entries: Vec<PreparedEntry>,
    /// Author's signature over the state statement.
    pub sig: RsaSignature,
}

impl EpochState {
    fn entries_digest(entries: &[PreparedEntry]) -> [u8; 32] {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(entries.len() as u32).to_be_bytes());
        for e in entries {
            e.encode(&mut buf);
        }
        payload_digest(&buf)
    }
}

impl Wire for EpochState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.sender.encode(buf);
        buf.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for e in &self.entries {
            e.encode(buf);
        }
        self.sig.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let epoch = r.u64()?;
        let sender = PartyId::decode(r)?;
        let len = r.u32()? as usize;
        if len > 65_536 {
            return Err(WireError::LengthOverflow);
        }
        let mut entries = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            entries.push(PreparedEntry::decode(r)?);
        }
        Ok(EpochState {
            epoch,
            sender,
            entries,
            sig: RsaSignature::decode(r)?,
        })
    }
}

/// The recovery agreement's subject: `n - t` signed epoch states.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RecoverySet(Vec<EpochState>);

impl Wire for RecoverySet {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.0.len() as u32).to_be_bytes());
        for s in &self.0 {
            s.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.u32()? as usize;
        if len > 1024 {
            return Err(WireError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(EpochState::decode(r)?);
        }
        Ok(RecoverySet(out))
    }
}

/// Checks one epoch state: author signature plus every entry's prepared
/// certificate.
fn validate_state(pid: &ProtocolId, ctx: &GroupContext, epoch: u64, state: &EpochState) -> bool {
    if state.epoch != epoch || !ctx.is_valid_party(state.sender) {
        return false;
    }
    let keys = &ctx.keys().common.sig_publics;
    let digest = EpochState::entries_digest(&state.entries);
    let statement = statement_opt_state(pid, epoch, &digest);
    if !keys[state.sender.0].verify(&statement, &state.sig) {
        return false;
    }
    for entry in &state.entries {
        let payload_bytes = entry.payload.to_bytes();
        let d = payload_digest(&payload_bytes);
        let statement = statement_opt_ack(pid, 1, epoch, entry.seq, &d);
        let mut seen = BTreeSet::new();
        let mut valid = 0usize;
        for (idx, sig) in &entry.cert {
            let idx = *idx as usize;
            if idx >= ctx.n() || !seen.insert(idx) {
                return false;
            }
            if !keys[idx].verify(&statement, sig) {
                return false;
            }
            valid += 1;
        }
        if valid < ctx.n_minus_t() {
            return false;
        }
    }
    true
}

/// Per-sequence fast-path bookkeeping.
#[derive(Debug, Default)]
struct SlotAcks {
    /// signer -> (digest, signature), per phase (index 0 = phase 1).
    acks: [BTreeMap<usize, ([u8; 32], RsaSignature)>; 2],
    ack_sent: [bool; 2],
}

/// An optimistic atomic broadcast channel endpoint.
#[derive(Debug)]
pub struct OptimisticChannel {
    pid: ProtocolId,
    ctx: GroupContext,
    config: OptimisticChannelConfig,
    epoch: u64,
    /// Own payload counter.
    next_seq: u64,
    /// Submissions known (own and others'), undelivered.
    known: BTreeMap<(PartyId, u64), Payload>,
    delivered: BTreeSet<(PartyId, u64)>,
    deliveries: VecDeque<Payload>,
    delivery_count: u64,
    /// Monotone counter of *any* fast-path advancement (orders, prepares,
    /// commits, deliveries): the complaint timer only fires when this is
    /// stuck, so a long pipeline in progress is not mistaken for a dead
    /// leader.
    progress: u64,
    // --- fast path (current epoch) ---
    /// Leader role: payloads already assigned a slot this epoch.
    assigned: BTreeSet<(PartyId, u64)>,
    next_assign: u64,
    /// Order-dissemination broadcasts by slot.
    rbs: BTreeMap<u64, ReliableBroadcast>,
    /// Reliable-broadcast-delivered orders by slot.
    orders: BTreeMap<u64, Payload>,
    slots: BTreeMap<u64, SlotAcks>,
    prepared: BTreeMap<u64, PreparedEntry>,
    committed: BTreeMap<u64, Payload>,
    next_deliver: u64,
    // --- complaints & recovery ---
    complained: bool,
    complainers: BTreeSet<PartyId>,
    in_recovery: bool,
    state_sent: bool,
    states: BTreeMap<PartyId, EpochState>,
    recovery: Option<MultiValuedAgreement>,
    recovery_proposed: bool,
    // --- timer ---
    timer_armed: bool,
    progress_at_arm: u64,
    // --- close ---
    close_requested: bool,
    close_origins: BTreeSet<PartyId>,
    closed: bool,
    closed_taken: bool,
}

impl OptimisticChannel {
    /// Opens a channel endpoint.
    pub fn new(pid: ProtocolId, ctx: GroupContext, config: OptimisticChannelConfig) -> Self {
        OptimisticChannel {
            pid,
            ctx,
            config,
            epoch: 0,
            next_seq: 0,
            known: BTreeMap::new(),
            delivered: BTreeSet::new(),
            deliveries: VecDeque::new(),
            delivery_count: 0,
            progress: 0,
            assigned: BTreeSet::new(),
            next_assign: 0,
            rbs: BTreeMap::new(),
            orders: BTreeMap::new(),
            slots: BTreeMap::new(),
            prepared: BTreeMap::new(),
            committed: BTreeMap::new(),
            next_deliver: 0,
            complained: false,
            complainers: BTreeSet::new(),
            in_recovery: false,
            state_sent: false,
            states: BTreeMap::new(),
            recovery: None,
            recovery_proposed: false,
            timer_armed: false,
            progress_at_arm: 0,
            close_requested: false,
            close_origins: BTreeSet::new(),
            closed: false,
            closed_taken: false,
        }
    }

    /// The channel identifier.
    pub fn pid(&self) -> &ProtocolId {
        &self.pid
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current epoch's leader (sequencer).
    pub fn leader(&self) -> PartyId {
        PartyId((self.epoch as usize) % self.ctx.n())
    }

    /// Whether `send` is currently allowed.
    pub fn can_send(&self) -> bool {
        !self.close_requested && !self.closed
    }

    /// Whether a delivery is waiting.
    pub fn can_receive(&self) -> bool {
        !self.deliveries.is_empty()
    }

    /// Takes the next delivered payload, in total order.
    pub fn take_delivery(&mut self) -> Option<Payload> {
        self.deliveries.pop_front()
    }

    /// Whether the channel has terminated.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Returns `true` exactly once upon termination.
    pub fn take_closed(&mut self) -> bool {
        if self.closed && !self.closed_taken {
            self.closed_taken = true;
            true
        } else {
            false
        }
    }

    /// Queues a payload for total-order delivery.
    ///
    /// # Panics
    ///
    /// Panics after `close` has been called.
    pub fn send(&mut self, data: Vec<u8>, out: &mut Outgoing) {
        assert!(self.can_send(), "channel is closing or closed");
        let payload = Payload {
            origin: self.ctx.me(),
            seq: self.next_seq,
            kind: PayloadKind::App,
            data,
        };
        self.next_seq += 1;
        self.submit_own(payload, out);
    }

    /// Requests channel termination (a termination request is this party's
    /// last payload; `t + 1` delivered requests close the channel).
    pub fn close(&mut self, out: &mut Outgoing) {
        if self.close_requested || self.closed {
            return;
        }
        self.close_requested = true;
        let payload = Payload {
            origin: self.ctx.me(),
            seq: self.next_seq,
            kind: PayloadKind::Close,
            data: Vec::new(),
        };
        self.next_seq += 1;
        self.submit_own(payload, out);
    }

    fn submit_own(&mut self, payload: Payload, out: &mut Outgoing) {
        self.known
            .insert((payload.origin, payload.seq), payload.clone());
        // Broadcast the submission so every party can hold the leader
        // accountable for it (the complaint trigger needs global
        // knowledge of outstanding work).
        out.send_all(&self.pid, Body::OptSubmit { payload });
        self.arm_timer(out);
    }

    fn arm_timer(&mut self, out: &mut Outgoing) {
        if self.timer_armed || self.closed {
            return;
        }
        self.timer_armed = true;
        self.progress_at_arm = self.progress;
        out.set_timer(&self.pid, self.epoch, self.config.complaint_timeout_ms);
    }

    fn has_work(&self) -> bool {
        self.known.keys().any(|id| !self.delivered.contains(id))
            || self.orders.keys().any(|s| *s >= self.next_deliver)
    }

    /// Timer expiry: complain if no progress happened while work is
    /// outstanding.
    pub fn handle_timer(&mut self, token: u64, out: &mut Outgoing) {
        self.timer_armed = false;
        if self.closed || token != self.epoch {
            return;
        }
        if !self.has_work() {
            return; // quiescent: do not re-arm
        }
        if self.progress == self.progress_at_arm && !self.in_recovery && !self.complained {
            self.complained = true;
            out.send_all(&self.pid, Body::OptComplain { epoch: self.epoch });
            // Count our own complaint immediately (the self-copy also
            // arrives through the network, idempotently).
            self.complainers.insert(self.ctx.me());
            self.maybe_enter_recovery(out);
        }
        self.arm_timer(out);
    }

    fn rb_pid(&self, epoch: u64, seq: u64) -> ProtocolId {
        self.pid.child(format!("rb/{epoch}/{seq}"))
    }

    /// Leader: assign slots to all known undelivered, unassigned payloads.
    fn assign_known(&mut self, out: &mut Outgoing) {
        if self.leader() != self.ctx.me() || self.in_recovery || self.closed {
            return;
        }
        let mut todo: Vec<Payload> = self
            .known
            .iter()
            .filter(|(id, _)| !self.delivered.contains(id) && !self.assigned.contains(id))
            .map(|(_, p)| p.clone())
            .collect();
        todo.sort_by_key(|p| (p.origin, p.seq));
        for payload in todo {
            self.assigned.insert((payload.origin, payload.seq));
            let seq = self.next_assign;
            self.next_assign += 1;
            let rb_pid = self.rb_pid(self.epoch, seq);
            let rb = self
                .rbs
                .entry(seq)
                .or_insert_with(|| ReliableBroadcast::new(rb_pid, self.ctx.clone(), self.ctx.me()));
            rb.send(payload.to_bytes(), out);
        }
    }

    /// Processes a protocol message addressed to this channel or one of
    /// its children.
    pub fn handle(&mut self, from: PartyId, msg_pid: &ProtocolId, body: &Body, out: &mut Outgoing) {
        if self.closed || !self.ctx.is_valid_party(from) {
            return;
        }
        if *msg_pid == self.pid {
            match body {
                Body::OptSubmit { payload } => self.on_submit(from, payload, out),
                Body::OptAck {
                    phase,
                    epoch,
                    seq,
                    digest,
                    sig,
                } => self.on_ack(from, *phase, *epoch, *seq, digest, sig, out),
                Body::OptComplain { epoch } if *epoch == self.epoch => {
                    self.complainers.insert(from);
                    self.maybe_enter_recovery(out);
                }
                Body::OptState { epoch, state } => self.on_state(from, *epoch, state, out),
                _ => {}
            }
            return;
        }
        // Order-dissemination broadcasts: {pid}/rb/{epoch}/{seq}.
        if let Some((e, s)) = self.parse_rb_child(msg_pid) {
            if e == self.epoch && !self.in_recovery {
                // Any traffic for the current epoch's broadcasts counts as
                // liveness progress: the complaint timer should only fire
                // when the epoch has gone *quiet*, not merely when a wide
                // pipeline has not completed a slot yet. (A Byzantine
                // leader can exploit this to stall by trickling traffic —
                // a throughput attack all sequencer-based protocols share;
                // the timeout remains a heuristic, as the paper notes.)
                self.progress += 1;
                let rb_pid = self.rb_pid(e, s);
                let leader = self.leader();
                let ctx = self.ctx.clone();
                let rb = self
                    .rbs
                    .entry(s)
                    .or_insert_with(|| ReliableBroadcast::new(rb_pid, ctx, leader));
                rb.handle(from, body, out);
                if let Some(bytes) = self.rbs.get_mut(&s).and_then(|rb| rb.take_delivery()) {
                    self.on_order(s, &bytes, out);
                }
            }
            return;
        }
        // Recovery agreement: {pid}/rec/{epoch}.
        if let Some(e) = self.parse_rec_child(msg_pid) {
            if e == self.epoch {
                self.ensure_recovery_instance();
                if let Some(rec) = &mut self.recovery {
                    rec.handle(from, msg_pid, body, out);
                }
                self.check_recovery_decision(out);
            }
        }
    }

    fn parse_rb_child(&self, msg_pid: &ProtocolId) -> Option<(u64, u64)> {
        let rest = msg_pid.as_str().strip_prefix(self.pid.as_str())?;
        let rest = rest.strip_prefix("/rb/")?;
        let (e, s) = rest.split_once('/')?;
        Some((e.parse().ok()?, s.parse().ok()?))
    }

    fn parse_rec_child(&self, msg_pid: &ProtocolId) -> Option<u64> {
        let rest = msg_pid.as_str().strip_prefix(self.pid.as_str())?;
        let rest = rest.strip_prefix("/rec/")?;
        match rest.find('/') {
            Some(idx) => rest[..idx].parse().ok(),
            None => rest.parse().ok(),
        }
    }

    fn on_submit(&mut self, _from: PartyId, payload: &Payload, out: &mut Outgoing) {
        let id = (payload.origin, payload.seq);
        if self.delivered.contains(&id) {
            return;
        }
        self.known.entry(id).or_insert_with(|| payload.clone());
        self.assign_known(out);
        self.arm_timer(out);
    }

    /// An order assignment was reliably delivered for `seq`.
    fn on_order(&mut self, seq: u64, payload_bytes: &[u8], out: &mut Outgoing) {
        let Ok(payload) = Payload::from_bytes(payload_bytes) else {
            return; // malformed order from a Byzantine leader: ignore
        };
        self.orders.insert(seq, payload);
        self.progress += 1;
        let digest = payload_digest(payload_bytes);
        self.send_ack(1, seq, digest, out);
        self.check_slot(seq, out);
        self.arm_timer(out);
    }

    fn send_ack(&mut self, phase: u8, seq: u64, digest: [u8; 32], out: &mut Outgoing) {
        let slot = self.slots.entry(seq).or_default();
        if slot.ack_sent[(phase - 1) as usize] {
            return;
        }
        slot.ack_sent[(phase - 1) as usize] = true;
        let statement = statement_opt_ack(&self.pid, phase, self.epoch, seq, &digest);
        let sig = self.ctx.keys().sig_key.sign(&statement);
        out.send_all(
            &self.pid,
            Body::OptAck {
                phase,
                epoch: self.epoch,
                seq,
                digest,
                sig,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        &mut self,
        from: PartyId,
        phase: u8,
        epoch: u64,
        seq: u64,
        digest: &[u8; 32],
        sig: &RsaSignature,
        out: &mut Outgoing,
    ) {
        if epoch != self.epoch || self.in_recovery || !(1..=2).contains(&phase) {
            return;
        }
        let statement = statement_opt_ack(&self.pid, phase, epoch, seq, digest);
        if !self.ctx.verify_party_sig_cached(from, &statement, sig) {
            return;
        }
        self.progress += 1;
        let slot = self.slots.entry(seq).or_default();
        slot.acks[(phase - 1) as usize]
            .entry(from.0)
            .or_insert((*digest, sig.clone()));
        self.check_slot(seq, out);
    }

    /// Advances a slot through prepare/commit as acknowledgements arrive.
    fn check_slot(&mut self, seq: u64, out: &mut Outgoing) {
        let Some(order) = self.orders.get(&seq).cloned() else {
            return;
        };
        let order_digest = payload_digest(&order.to_bytes());
        let quorum = self.ctx.n_minus_t();

        // Phase 1 -> prepared.
        if !self.prepared.contains_key(&seq) {
            if let Some(slot) = self.slots.get(&seq) {
                let cert: Vec<(u32, RsaSignature)> = slot.acks[0]
                    .iter()
                    .filter(|(_, (d, _))| *d == order_digest)
                    .map(|(idx, (_, sig))| (*idx as u32, sig.clone()))
                    .collect();
                if cert.len() >= quorum {
                    self.prepared.insert(
                        seq,
                        PreparedEntry {
                            seq,
                            payload: order.clone(),
                            cert,
                        },
                    );
                    self.progress += 1;
                    self.send_ack(2, seq, order_digest, out);
                }
            }
        }

        // Phase 2 -> committed.
        if self.prepared.contains_key(&seq) && !self.committed.contains_key(&seq) {
            if let Some(slot) = self.slots.get(&seq) {
                let commits = slot.acks[1]
                    .values()
                    .filter(|(d, _)| *d == order_digest)
                    .count();
                if commits >= quorum {
                    self.committed.insert(seq, order);
                    self.progress += 1;
                }
            }
        }
        self.deliver_committed(out);
    }

    /// Delivers committed slots in contiguous sequence order.
    fn deliver_committed(&mut self, out: &mut Outgoing) {
        while let Some(payload) = self.committed.get(&self.next_deliver).cloned() {
            self.next_deliver += 1;
            self.deliver(payload);
        }
        if self.close_origins.len() > self.ctx.fault_budget() {
            self.closed = true;
        } else if self.has_work() {
            self.arm_timer(out);
        }
    }

    fn deliver(&mut self, payload: Payload) {
        let id = (payload.origin, payload.seq);
        if !self.delivered.insert(id) {
            return;
        }
        self.known.remove(&id);
        self.delivery_count += 1;
        self.progress += 1;
        match payload.kind {
            PayloadKind::App => self.deliveries.push_back(payload),
            PayloadKind::Close => {
                self.close_origins.insert(payload.origin);
            }
        }
    }

    fn maybe_enter_recovery(&mut self, out: &mut Outgoing) {
        if self.in_recovery || self.closed || self.complainers.len() <= self.ctx.fault_budget() {
            return;
        }
        self.in_recovery = true;
        if !self.state_sent {
            self.state_sent = true;
            let entries: Vec<PreparedEntry> = self.prepared.values().cloned().collect();
            let digest = EpochState::entries_digest(&entries);
            let statement = statement_opt_state(&self.pid, self.epoch, &digest);
            let sig = self.ctx.keys().sig_key.sign(&statement);
            let state = EpochState {
                epoch: self.epoch,
                sender: self.ctx.me(),
                entries,
                sig,
            };
            out.send_all(
                &self.pid,
                Body::OptState {
                    epoch: self.epoch,
                    state: state.to_bytes(),
                },
            );
        }
        self.maybe_propose_recovery(out);
    }

    fn on_state(&mut self, from: PartyId, epoch: u64, bytes: &[u8], out: &mut Outgoing) {
        if epoch != self.epoch || self.states.contains_key(&from) {
            return;
        }
        let Ok(state) = EpochState::from_bytes(bytes) else {
            return;
        };
        if state.sender != from || !validate_state(&self.pid, &self.ctx, epoch, &state) {
            return;
        }
        self.states.insert(from, state);
        // A valid state is an implicit complaint: its author is already
        // recovering.
        self.complainers.insert(from);
        self.maybe_enter_recovery(out);
        self.maybe_propose_recovery(out);
    }

    fn ensure_recovery_instance(&mut self) {
        if self.recovery.is_some() {
            return;
        }
        let rec_pid = self.pid.child(format!("rec/{}", self.epoch));
        let vpid = self.pid.clone();
        let vctx = self.ctx.clone();
        let epoch = self.epoch;
        let quorum = self.ctx.n_minus_t();
        let validator = ArrayValidator::new(move |bytes| {
            let Ok(set) = RecoverySet::from_bytes(bytes) else {
                return false;
            };
            if set.0.len() < quorum {
                return false;
            }
            let mut senders = BTreeSet::new();
            set.0
                .iter()
                .all(|s| senders.insert(s.sender) && validate_state(&vpid, &vctx, epoch, s))
        });
        self.recovery = Some(MultiValuedAgreement::new(
            rec_pid,
            self.ctx.clone(),
            validator,
            self.config.recovery_order,
        ));
    }

    fn maybe_propose_recovery(&mut self, out: &mut Outgoing) {
        if !self.in_recovery || self.recovery_proposed || self.states.len() < self.ctx.n_minus_t() {
            return;
        }
        self.recovery_proposed = true;
        self.ensure_recovery_instance();
        let mut states: Vec<EpochState> = self.states.values().cloned().collect();
        states.sort_by_key(|s| s.sender);
        states.truncate(self.ctx.n_minus_t());
        let set = RecoverySet(states);
        if let Some(rec) = &mut self.recovery {
            rec.propose(set.to_bytes(), out);
        }
        self.check_recovery_decision(out);
    }

    fn check_recovery_decision(&mut self, out: &mut Outgoing) {
        let Some(rec) = &mut self.recovery else {
            return;
        };
        let Some(decided) = rec.take_decision() else {
            return;
        };
        let set = RecoverySet::from_bytes(&decided)
            .or_invariant("externally validated recovery set failed to decode");
        // The cut: every prepared entry exhibited by the decided set.
        let mut carried: BTreeMap<u64, Payload> = BTreeMap::new();
        for state in &set.0 {
            for entry in &state.entries {
                carried
                    .entry(entry.seq)
                    .or_insert_with(|| entry.payload.clone());
            }
        }
        for (_, payload) in carried {
            self.deliver(payload);
        }
        // Start the next epoch under the next leader.
        self.epoch += 1;
        out.trace_with(|| {
            TraceEvent::new(self.ctx.me().0, self.pid.as_str(), "opt")
                .phase("epoch")
                .round(self.epoch)
        });
        self.assigned.clear();
        self.next_assign = 0;
        self.rbs.clear();
        self.orders.clear();
        self.slots.clear();
        self.prepared.clear();
        self.committed.clear();
        self.next_deliver = 0;
        self.complained = false;
        self.complainers.clear();
        self.in_recovery = false;
        self.state_sent = false;
        self.states.clear();
        self.recovery = None;
        self.recovery_proposed = false;
        self.known.retain(|id, _| !self.delivered.contains(id));
        if self.close_origins.len() > self.ctx.fault_budget() {
            self.closed = true;
            return;
        }
        // Resubmit own outstanding payloads; the new leader assigns every
        // known undelivered payload immediately.
        let me = self.ctx.me();
        let own: Vec<Payload> = self
            .known
            .values()
            .filter(|p| p.origin == me)
            .cloned()
            .collect();
        for payload in own {
            out.send_all(&self.pid, Body::OptSubmit { payload });
        }
        self.assign_known(out);
        if self.has_work() {
            self.timer_armed = false;
            self.arm_timer(out);
        }
    }
}

impl StateSnapshot for OptimisticChannel {
    fn has_pending_work(&self) -> bool {
        !self.closed && (self.has_work() || self.close_requested || self.in_recovery)
    }

    fn snapshot_json(&self) -> String {
        let undelivered = self
            .known
            .keys()
            .filter(|id| !self.delivered.contains(*id))
            .count() as u64;
        let mut w = SnapshotWriter::new(self.pid.as_str(), "optimistic")
            .num("epoch", self.epoch)
            .num("undelivered_known", undelivered)
            .num("next_deliver", self.next_deliver)
            .num("orders", self.orders.len() as u64)
            .num("prepared", self.prepared.len() as u64)
            .num("committed", self.committed.len() as u64)
            .num("delivery_count", self.delivery_count)
            .num("progress", self.progress)
            .flag("complained", self.complained)
            .num("complainers", self.complainers.len() as u64)
            .num("complaint_quorum", self.ctx.one_honest() as u64)
            .flag("in_recovery", self.in_recovery)
            .flag("state_sent", self.state_sent)
            .num("epoch_states", self.states.len() as u64)
            .flag("timer_armed", self.timer_armed)
            .flag("close_requested", self.close_requested)
            .num("close_origins", self.close_origins.len() as u64)
            .flag("closed", self.closed);
        if let Some(recovery) = &self.recovery {
            w = w.raw("recovery_vba", &recovery.snapshot_json());
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outgoing::{Recipient, TimerRequest};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sintra_crypto::dealer::{deal, DealerConfig};
    use std::collections::BinaryHeap;
    use std::sync::Arc;

    fn group(n: usize, t: usize) -> Vec<GroupContext> {
        let mut rng = StdRng::seed_from_u64(67);
        deal(&DealerConfig::small(n, t), &mut rng)
            .unwrap()
            .into_iter()
            .map(|k| GroupContext::new(Arc::new(k)))
            .collect()
    }

    fn channels(ctxs: &[GroupContext], tag: &str) -> Vec<OptimisticChannel> {
        ctxs.iter()
            .map(|c| {
                OptimisticChannel::new(
                    ProtocolId::new(tag),
                    c.clone(),
                    OptimisticChannelConfig::default(),
                )
            })
            .collect()
    }

    /// A miniature event loop with virtual time: messages take 1 time
    /// unit (per hop), timers their requested delay. `silent` parties
    /// drop all their traffic (crash).
    fn pump(chans: &mut [OptimisticChannel], outs: Vec<(usize, Outgoing)>, silent: &[usize]) {
        #[derive(PartialEq, Eq)]
        struct Ev(
            std::cmp::Reverse<(u64, u64)>,
            usize,
            Option<(PartyId, ProtocolId, Body)>,
            u64,
        );
        impl PartialOrd for Ev {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Ev {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        let n = chans.len();
        let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
        let mut seq = 0u64;
        let push_out = |heap: &mut BinaryHeap<Ev>,
                        seq: &mut u64,
                        clock: u64,
                        from: usize,
                        mut out: Outgoing| {
            if silent.contains(&from) {
                return;
            }
            for (recipient, env) in out.drain() {
                let targets: Vec<usize> = match recipient {
                    Recipient::All => (0..n).collect(),
                    Recipient::One(p) => vec![p.0],
                };
                for to in targets {
                    *seq += 1;
                    heap.push(Ev(
                        std::cmp::Reverse((clock + 1, *seq)),
                        to,
                        Some((PartyId(from), env.pid.clone(), env.body.clone())),
                        0,
                    ));
                }
            }
            for TimerRequest {
                token, delay_ms, ..
            } in out.drain_timers()
            {
                *seq += 1;
                heap.push(Ev(
                    std::cmp::Reverse((clock + delay_ms, *seq)),
                    from,
                    None,
                    token,
                ));
            }
        };
        for (from, out) in outs {
            push_out(&mut heap, &mut seq, 0, from, out);
        }
        let mut steps = 0u64;
        while let Some(Ev(std::cmp::Reverse((clock, _)), to, msg, token)) = heap.pop() {
            steps += 1;
            assert!(steps < 3_000_000, "optimistic channel did not quiesce");
            if silent.contains(&to) {
                continue;
            }
            let mut out = Outgoing::new();
            match msg {
                Some((from, pid, body)) => chans[to].handle(from, &pid, &body, &mut out),
                None => chans[to].handle_timer(token, &mut out),
            }
            push_out(&mut heap, &mut seq, clock, to, out);
        }
    }

    fn collect(chan: &mut OptimisticChannel) -> Vec<Vec<u8>> {
        let mut v = Vec::new();
        while let Some(p) = chan.take_delivery() {
            v.push(p.data);
        }
        v
    }

    #[test]
    fn fast_path_total_order() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "opt");
        let mut outs = Vec::new();
        for (i, chan) in chans.iter_mut().enumerate() {
            let mut out = Outgoing::new();
            for k in 0..3u8 {
                chan.send(vec![i as u8, k], &mut out);
            }
            outs.push((i, out));
        }
        pump(&mut chans, outs, &[]);
        let reference = collect(&mut chans[0]);
        assert_eq!(reference.len(), 12, "all payloads delivered");
        for (i, chan) in chans.iter_mut().enumerate().skip(1) {
            assert_eq!(collect(chan), reference, "party {i}");
        }
        // Still epoch 0: the fast path never failed over.
        assert!(chans.iter().all(|c| c.epoch() == 0));
    }

    #[test]
    fn crashed_leader_triggers_recovery() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "opt-crash");
        // Epoch 0's leader is P0; it is crashed from the start.
        let mut outs = Vec::new();
        for (i, chan) in chans.iter_mut().enumerate().skip(1) {
            let mut out = Outgoing::new();
            chan.send(format!("from-{i}").into_bytes(), &mut out);
            outs.push((i, out));
        }
        pump(&mut chans, outs, &[0]);
        let reference = collect(&mut chans[1]);
        assert_eq!(reference.len(), 3, "payloads delivered despite dead leader");
        for (i, chan) in chans.iter_mut().enumerate().skip(2) {
            assert_eq!(collect(chan), reference, "party {i}");
        }
        // The survivors moved past epoch 0.
        assert!(chans[1..].iter().all(|c| c.epoch() >= 1), "epoch advanced");
    }

    #[test]
    fn leader_crash_after_partial_progress_is_safe() {
        // The leader sequences one payload, everyone delivers it on the
        // fast path, then the leader dies before sequencing the second.
        // Recovery must preserve the first delivery and the new epoch
        // must deliver the second.
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "opt-partial");
        let mut outs = Vec::new();
        let mut out = Outgoing::new();
        chans[0].send(b"sequenced-by-P0".to_vec(), &mut out);
        outs.push((0usize, out));
        pump(&mut chans, outs, &[]);
        for chan in chans.iter_mut() {
            assert_eq!(collect(chan), vec![b"sequenced-by-P0".to_vec()]);
            assert_eq!(chan.epoch(), 0);
        }
        // Now P0 goes silent and P2 sends.
        let mut out = Outgoing::new();
        chans[2].send(b"after-crash".to_vec(), &mut out);
        pump(&mut chans, vec![(2, out)], &[0]);
        for (i, chan) in chans.iter_mut().enumerate().skip(1) {
            assert_eq!(collect(chan), vec![b"after-crash".to_vec()], "party {i}");
            assert!(chan.epoch() >= 1);
        }
    }

    #[test]
    fn close_terminates() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "opt-close");
        let mut outs = Vec::new();
        for (i, chan) in chans.iter_mut().enumerate() {
            let mut out = Outgoing::new();
            chan.close(&mut out);
            outs.push((i, out));
        }
        pump(&mut chans, outs, &[]);
        for (i, chan) in chans.iter_mut().enumerate() {
            assert!(chan.is_closed(), "party {i}");
            assert!(chan.take_closed());
        }
    }

    #[test]
    fn forged_state_rejected() {
        let ctxs = group(4, 1);
        let pid = ProtocolId::new("opt-forge");
        let mut chan = OptimisticChannel::new(
            pid.clone(),
            ctxs[1].clone(),
            OptimisticChannelConfig::default(),
        );
        // A state with a bogus signature must not be accepted.
        let state = EpochState {
            epoch: 0,
            sender: PartyId(2),
            entries: vec![],
            sig: RsaSignature(sintra_bigint::Ubig::from(7u64)),
        };
        let mut out = Outgoing::new();
        chan.handle(
            PartyId(2),
            &pid,
            &Body::OptState {
                epoch: 0,
                state: state.to_bytes(),
            },
            &mut out,
        );
        assert!(chan.states.is_empty());
    }

    #[test]
    fn state_and_entry_wire_roundtrip() {
        let entry = PreparedEntry {
            seq: 7,
            payload: Payload {
                origin: PartyId(1),
                seq: 3,
                kind: PayloadKind::App,
                data: b"x".to_vec(),
            },
            cert: vec![(0, RsaSignature(sintra_bigint::Ubig::from(9u64)))],
        };
        let decoded = PreparedEntry::from_bytes(&entry.to_bytes()).unwrap();
        assert_eq!(decoded, entry);
        let state = EpochState {
            epoch: 2,
            sender: PartyId(3),
            entries: vec![entry],
            sig: RsaSignature(sintra_bigint::Ubig::from(11u64)),
        };
        assert_eq!(EpochState::from_bytes(&state.to_bytes()).unwrap(), state);
    }
}
