//! The atomic broadcast channel (paper §2.5).
//!
//! The protocol proceeds in global rounds, following the structure of
//! Chandra–Toueg atomic broadcast transplanted to the Byzantine setting:
//!
//! 1. every party signs its next payload together with the round number
//!    and sends the signed *entry* to all parties; a party with nothing to
//!    send may *adopt* another party's payload and sign that;
//! 2. once a party holds a *batch* of `n - f + 1` entries signed by
//!    distinct parties, it proposes the batch to a multi-valued agreement
//!    whose external validity predicate checks exactly that property;
//! 3. all payloads of the agreed batch are delivered in a fixed order
//!    (by signer index), deduplicated by `(origin, sequence-number)` —
//!    the paper's practical weakening of integrity.
//!
//! Fairness: with batch size `n - f + 1`, a payload known to `f` honest
//! parties is delivered within a bounded number of rounds, because every
//! agreed batch contains at least one entry signed by one of them.
//!
//! Termination: `close` enqueues a termination request as a regular
//! payload; the channel terminates at the end of the round in which
//! requests from `t + 1` distinct parties have been delivered.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sintra_telemetry::{SnapshotWriter, StateSnapshot, TraceEvent};

use crate::agreement::{CandidateOrder, MultiValuedAgreement};
use crate::config::GroupContext;
use crate::ids::{PartyId, ProtocolId};
use crate::invariant::OrInvariant;
use crate::invariant_unwrap;
use crate::message::{statement_entry, Body, Entry, Payload, PayloadKind};
use crate::outgoing::Outgoing;
use crate::validator::ArrayValidator;
use crate::wire::Wire;

/// Configuration of an atomic channel.
#[derive(Debug, Clone, Copy)]
pub struct AtomicChannelConfig {
    /// The fairness parameter `f` (`t + 1 <= f <= n - t`); the batch size
    /// is `n - f + 1`. `None` selects the paper's experimental setup
    /// `f = n - t`, i.e. batch size `t + 1`.
    pub fairness: Option<usize>,
    /// Candidate order for the inner multi-valued agreements.
    pub order: CandidateOrder,
}

impl Default for AtomicChannelConfig {
    fn default() -> Self {
        AtomicChannelConfig {
            fairness: None,
            order: CandidateOrder::LocalRandom,
        }
    }
}

/// An atomic broadcast channel endpoint at one party.
#[derive(Debug)]
pub struct AtomicChannel {
    pid: ProtocolId,
    ctx: GroupContext,
    batch_size: usize,
    order: CandidateOrder,
    round: u64,
    /// Own payloads not yet delivered.
    queue: VecDeque<Payload>,
    next_seq: u64,
    /// Delivered payload identities (the integrity filter).
    delivered: BTreeSet<(PartyId, u64)>,
    /// Application deliveries not yet drained by the runtime.
    deliveries: VecDeque<Payload>,
    /// Valid entries by round, in arrival order (the paper: "the protocol
    /// considers the messages in the order in which they arrive in the
    /// current round"), at most one per signer.
    entries: BTreeMap<u64, Vec<Entry>>,
    /// Whether we broadcast our own entry for a round.
    sent_entry: BTreeSet<u64>,
    /// Whether we proposed a batch for a round.
    proposed: BTreeSet<u64>,
    vbas: BTreeMap<u64, MultiValuedAgreement>,
    close_requested: bool,
    /// Origins whose termination requests have been delivered.
    close_origins: BTreeSet<PartyId>,
    closed: bool,
    closed_taken: bool,
}

/// Wire container for a batch of entries.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Batch(Vec<Entry>);

impl Wire for Batch {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.0.len() as u32).to_be_bytes());
        for e in &self.0 {
            e.encode(buf);
        }
    }
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::WireError> {
        let len = r.u32()? as usize;
        if len > 4096 {
            return Err(crate::wire::WireError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(Entry::decode(r)?);
        }
        Ok(Batch(out))
    }
}

impl AtomicChannel {
    /// Opens a channel endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the fairness parameter is outside `t + 1 ..= n - t`.
    pub fn new(pid: ProtocolId, ctx: GroupContext, config: AtomicChannelConfig) -> Self {
        let f = config.fairness.unwrap_or(ctx.n_minus_t());
        assert!(
            f >= ctx.one_honest() && f <= ctx.n_minus_t(),
            "fairness must satisfy t+1 <= f <= n-t"
        );
        let batch_size = ctx.fairness_batch(f);
        AtomicChannel {
            pid,
            ctx,
            batch_size,
            order: config.order,
            round: 0,
            queue: VecDeque::new(),
            next_seq: 0,
            delivered: BTreeSet::new(),
            deliveries: VecDeque::new(),
            entries: BTreeMap::new(),
            sent_entry: BTreeSet::new(),
            proposed: BTreeSet::new(),
            vbas: BTreeMap::new(),
            close_requested: false,
            close_origins: BTreeSet::new(),
            closed: false,
            closed_taken: false,
        }
    }

    /// The channel identifier.
    pub fn pid(&self) -> &ProtocolId {
        &self.pid
    }

    /// The configured batch size `n - f + 1`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The current protocol round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether the channel accepts further `send` calls.
    pub fn can_send(&self) -> bool {
        !self.close_requested && !self.closed
    }

    /// Queues a payload for total-order delivery.
    ///
    /// # Panics
    ///
    /// Panics after `close` has been called.
    pub fn send(&mut self, data: Vec<u8>, out: &mut Outgoing) {
        assert!(self.can_send(), "channel is closing or closed");
        let payload = Payload {
            origin: self.ctx.me(),
            seq: self.next_seq,
            kind: PayloadKind::App,
            data,
        };
        self.next_seq += 1;
        self.queue.push_back(payload);
        self.try_advance(out);
    }

    /// Requests channel termination: a termination request is sent as this
    /// party's last payload.
    pub fn close(&mut self, out: &mut Outgoing) {
        if self.close_requested || self.closed {
            return;
        }
        self.close_requested = true;
        let payload = Payload {
            origin: self.ctx.me(),
            seq: self.next_seq,
            kind: PayloadKind::Close,
            data: Vec::new(),
        };
        self.next_seq += 1;
        self.queue.push_back(payload);
        self.try_advance(out);
    }

    /// Whether a delivery is waiting to be received.
    pub fn can_receive(&self) -> bool {
        !self.deliveries.is_empty()
    }

    /// Takes the next delivered payload, in total order.
    pub fn take_delivery(&mut self) -> Option<Payload> {
        self.deliveries.pop_front()
    }

    /// Whether the channel has terminated.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Returns `true` exactly once, when the channel has terminated (used
    /// by runtimes to emit a single closed event).
    pub fn take_closed(&mut self) -> bool {
        if self.closed && !self.closed_taken {
            self.closed_taken = true;
            true
        } else {
            false
        }
    }

    /// Number of own payloads still waiting for delivery.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn batch_validator(&self, round: u64) -> ArrayValidator {
        let pid = self.pid.clone();
        let batch_size = self.batch_size;
        let keys: Vec<_> = self.ctx.keys().common.sig_publics.clone();
        ArrayValidator::new(move |bytes| {
            let Ok(batch) = Batch::from_bytes(bytes) else {
                return false;
            };
            if batch.0.len() != batch_size {
                return false;
            }
            let mut signers = BTreeSet::new();
            for entry in &batch.0 {
                if entry.signer.0 >= keys.len() || !signers.insert(entry.signer) {
                    return false;
                }
                let statement = statement_entry(&pid, round, &entry.payload);
                if !keys[entry.signer.0].verify(&statement, &entry.sig) {
                    return false;
                }
            }
            true
        })
    }

    fn vba_instance(&mut self, round: u64) -> &mut MultiValuedAgreement {
        if !self.vbas.contains_key(&round) {
            let vba = MultiValuedAgreement::new(
                self.pid.child(format!("vba/{round}")),
                self.ctx.clone(),
                self.batch_validator(round),
                self.order,
            );
            self.vbas.insert(round, vba);
        }
        invariant_unwrap!(
            self.vbas.get_mut(&round),
            "vba for round {round} missing after insert"
        )
    }

    /// Processes a protocol message addressed to this channel or one of
    /// its agreement children.
    pub fn handle(&mut self, from: PartyId, msg_pid: &ProtocolId, body: &Body, out: &mut Outgoing) {
        if self.closed || !self.ctx.is_valid_party(from) {
            return;
        }
        if *msg_pid == self.pid {
            if let Body::AcEntry { round, entry } = body {
                self.on_entry(from, *round, entry);
            }
        } else if let Some(round) = Self::parse_vba_child(&self.pid, msg_pid) {
            // Ignore stale rounds entirely.
            if round >= self.round {
                let vba = self.vba_instance(round);
                vba.handle(from, msg_pid, body, out);
            }
        }
        self.try_advance(out);
    }

    fn parse_vba_child(parent: &ProtocolId, msg_pid: &ProtocolId) -> Option<u64> {
        let rest = msg_pid.as_str().strip_prefix(parent.as_str())?;
        let rest = rest.strip_prefix("/vba/")?;
        match rest.find('/') {
            Some(idx) => rest[..idx].parse().ok(),
            None => rest.parse().ok(),
        }
    }

    fn on_entry(&mut self, from: PartyId, round: u64, entry: &Entry) {
        // Entries are broadcast by their signer.
        if entry.signer != from || round < self.round {
            return;
        }
        if self
            .entries
            .get(&round)
            .is_some_and(|es| es.iter().any(|e| e.signer == from))
        {
            return;
        }
        if self
            .delivered
            .contains(&(entry.payload.origin, entry.payload.seq))
        {
            return;
        }
        let statement = statement_entry(&self.pid, round, &entry.payload);
        if !self
            .ctx
            .verify_party_sig_cached(from, &statement, &entry.sig)
        {
            return;
        }
        // The round slot is only created once the signature checked out,
        // so forged entries cannot grow the per-round map.
        self.entries.entry(round).or_default().push(entry.clone());
    }

    /// Drives the round state machine.
    fn try_advance(&mut self, out: &mut Outgoing) {
        loop {
            if self.closed {
                return;
            }
            let round = self.round;

            // Step 1: broadcast our signed entry for this round.
            if !self.sent_entry.contains(&round) {
                // Drop already-delivered payloads from the head of the queue.
                while let Some(front) = self.queue.front() {
                    if self.delivered.contains(&(front.origin, front.seq)) {
                        self.queue.pop_front();
                    } else {
                        break;
                    }
                }
                let payload = if let Some(own) = self.queue.front() {
                    Some(own.clone())
                } else {
                    // Adopt ("a party may also adopt a message that was
                    // first signed by another party and sign that"): relay
                    // the first-arrived undelivered payload. This keeps
                    // every honest party contributing an entry each round,
                    // which the proposal gate below relies on.
                    self.entries.get(&round).and_then(|entries| {
                        entries
                            .iter()
                            .map(|e| &e.payload)
                            .find(|p| !self.delivered.contains(&(p.origin, p.seq)))
                            .cloned()
                    })
                };
                if let Some(payload) = payload {
                    let statement = statement_entry(&self.pid, round, &payload);
                    let sig = self.ctx.keys().sig_key.sign(&statement);
                    let entry = Entry {
                        payload,
                        signer: self.ctx.me(),
                        sig,
                    };
                    self.sent_entry.insert(round);
                    self.entries.entry(round).or_default().push(entry.clone());
                    out.send_all(&self.pid, Body::AcEntry { round, entry });
                }
            }

            // Step 2: propose a batch. We wait for n - t entries rather
            // than the bare batch size: every honest party contributes an
            // entry each active round (sending its own payload or
            // adopting one), so this cannot deadlock, and the extra
            // entries let the dedup pass below build batches of *distinct*
            // payloads instead of an adopter's duplicate crowding out a
            // real payload.
            let have = self.entries.get(&round).map_or(0, Vec::len);
            if have >= self.ctx.n_minus_t().max(self.batch_size) && !self.proposed.contains(&round)
            {
                self.proposed.insert(round);
                // Prefer entries carrying distinct payloads (in arrival
                // order) so a batch delivers as many new payloads as
                // possible; pad with duplicates only if needed.
                let all = invariant_unwrap!(
                    self.entries.get(&round),
                    "entry set for round {round} missing at proposal"
                );
                let mut batch_entries: Vec<Entry> = Vec::with_capacity(self.batch_size);
                let mut seen_payloads = BTreeSet::new();
                for entry in all {
                    if batch_entries.len() == self.batch_size {
                        break;
                    }
                    if seen_payloads.insert((entry.payload.origin, entry.payload.seq)) {
                        batch_entries.push(entry.clone());
                    }
                }
                for entry in all {
                    if batch_entries.len() == self.batch_size {
                        break;
                    }
                    if !batch_entries.iter().any(|e| e.signer == entry.signer) {
                        batch_entries.push(entry.clone());
                    }
                }
                let batch = Batch(batch_entries);
                let bytes = batch.to_bytes();
                let vba = self.vba_instance(round);
                vba.propose(bytes, out);
            }

            // Step 3: deliver the agreed batch.
            let Some(vba) = self.vbas.get_mut(&round) else {
                return;
            };
            let Some(decided) = vba.take_decision() else {
                return;
            };
            let batch = Batch::from_bytes(&decided)
                .or_invariant("externally validated batch failed to decode");
            let mut batch_entries = batch.0;
            let batch_len = batch_entries.len() as u64;
            out.trace_with(|| {
                TraceEvent::new(self.ctx.me().0, self.pid.as_str(), "atomic")
                    .phase("batch")
                    .round(round)
                    .bytes(batch_len)
            });
            // Fixed delivery order within the batch: by signer index.
            batch_entries.sort_by_key(|e| e.signer);
            for entry in batch_entries {
                let key = (entry.payload.origin, entry.payload.seq);
                if !self.delivered.insert(key) {
                    continue;
                }
                match entry.payload.kind {
                    PayloadKind::App => self.deliveries.push_back(entry.payload),
                    PayloadKind::Close => {
                        self.close_origins.insert(entry.payload.origin);
                    }
                }
            }
            // Clean up the finished round.
            self.vbas.remove(&round);
            self.entries.remove(&round);

            if self.close_origins.len() > self.ctx.fault_budget() {
                self.closed = true;
                return;
            }
            self.round += 1;
            out.trace_with(|| {
                TraceEvent::new(self.ctx.me().0, self.pid.as_str(), "atomic")
                    .phase("round")
                    .round(self.round)
            });
        }
    }
}

impl StateSnapshot for AtomicChannel {
    fn has_pending_work(&self) -> bool {
        if self.closed {
            return false;
        }
        !self.queue.is_empty()
            || self.close_requested
            || !self.entries.is_empty()
            || !self.vbas.is_empty()
    }

    fn snapshot_json(&self) -> String {
        let current_entries = self.entries.get(&self.round).map_or(0, Vec::len);
        let mut w = SnapshotWriter::new(self.pid.as_str(), "atomic")
            .num("round", self.round)
            .num("queue_depth", self.queue.len() as u64)
            .num("undrained_deliveries", self.deliveries.len() as u64)
            .num("entries", current_entries as u64)
            .num(
                "entry_quorum",
                self.ctx.n_minus_t().max(self.batch_size) as u64,
            )
            .num("batch_size", self.batch_size as u64)
            .flag("entry_sent", self.sent_entry.contains(&self.round))
            .flag("batch_proposed", self.proposed.contains(&self.round))
            .flag("close_requested", self.close_requested)
            .num("close_origins", self.close_origins.len() as u64)
            .flag("closed", self.closed);
        if let Some(vba) = self.vbas.get(&self.round) {
            w = w.raw("vba", &vba.snapshot_json());
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outgoing::Recipient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sintra_crypto::dealer::{deal, DealerConfig};
    use std::sync::Arc;

    fn group(n: usize, t: usize) -> Vec<GroupContext> {
        let mut rng = StdRng::seed_from_u64(37);
        deal(&DealerConfig::small(n, t), &mut rng)
            .unwrap()
            .into_iter()
            .map(|k| GroupContext::new(Arc::new(k)))
            .collect()
    }

    fn channels(ctxs: &[GroupContext], tag: &str) -> Vec<AtomicChannel> {
        ctxs.iter()
            .map(|c| {
                AtomicChannel::new(
                    ProtocolId::new(tag),
                    c.clone(),
                    AtomicChannelConfig::default(),
                )
            })
            .collect()
    }

    /// Delivers all queued messages FIFO until quiescence.
    fn pump(channels: &mut [AtomicChannel], outs: Vec<(usize, Outgoing)>) {
        let n = channels.len();
        let mut queue: std::collections::VecDeque<(PartyId, usize, ProtocolId, Body)> =
            std::collections::VecDeque::new();
        let push = |queue: &mut std::collections::VecDeque<_>, from: usize, mut out: Outgoing| {
            for (recipient, env) in out.drain() {
                match recipient {
                    Recipient::All => {
                        for to in 0..n {
                            queue.push_back((PartyId(from), to, env.pid.clone(), env.body.clone()));
                        }
                    }
                    Recipient::One(p) => {
                        queue.push_back((PartyId(from), p.0, env.pid, env.body));
                    }
                }
            }
        };
        for (from, out) in outs {
            push(&mut queue, from, out);
        }
        let mut steps = 0usize;
        while let Some((from, to, pid, body)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 5_000_000, "atomic channel did not quiesce");
            let mut out = Outgoing::new();
            channels[to].handle(from, &pid, &body, &mut out);
            push(&mut queue, to, out);
        }
    }

    #[test]
    fn single_sender_total_order() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "ac-single");
        let mut outs = Vec::new();
        let mut out = Outgoing::new();
        for i in 0..5u8 {
            chans[0].send(vec![i], &mut out);
        }
        outs.push((0usize, out));
        pump(&mut chans, outs);
        // All parties deliver the same sequence, in send order.
        for (p, chan) in chans.iter_mut().enumerate() {
            let mut got = Vec::new();
            while let Some(payload) = chan.take_delivery() {
                assert_eq!(payload.origin, PartyId(0));
                got.push(payload.data[0]);
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4], "party {p}");
        }
    }

    #[test]
    fn concurrent_senders_agree_on_order() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "ac-multi");
        let mut outs = Vec::new();
        for (i, chan) in chans.iter_mut().enumerate() {
            let mut out = Outgoing::new();
            for k in 0..3u8 {
                chan.send(format!("m{i}-{k}").into_bytes(), &mut out);
            }
            outs.push((i, out));
        }
        pump(&mut chans, outs);
        let sequences: Vec<Vec<Vec<u8>>> = chans
            .iter_mut()
            .map(|c| {
                let mut v = Vec::new();
                while let Some(p) = c.take_delivery() {
                    v.push(p.data);
                }
                v
            })
            .collect();
        assert_eq!(sequences[0].len(), 12, "all 12 payloads delivered");
        for (p, seq) in sequences.iter().enumerate().skip(1) {
            assert_eq!(seq, &sequences[0], "party {p} order differs");
        }
    }

    #[test]
    fn duplicate_sends_deliver_once_per_send() {
        // The paper's weakened integrity: the same bit string sent twice by
        // the same party is delivered twice (distinct sequence numbers),
        // but each (origin, seq) exactly once.
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "ac-dup");
        let mut out = Outgoing::new();
        chans[1].send(b"dup".to_vec(), &mut out);
        chans[1].send(b"dup".to_vec(), &mut out);
        pump(&mut chans, vec![(1, out)]);
        let mut count = 0;
        while let Some(p) = chans[2].take_delivery() {
            assert_eq!(p.data, b"dup");
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn close_terminates_all_parties() {
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "ac-close");
        let mut outs = Vec::new();
        let mut out0 = Outgoing::new();
        chans[0].send(b"final".to_vec(), &mut out0);
        chans[0].close(&mut out0);
        outs.push((0usize, out0));
        for (i, chan) in chans.iter_mut().enumerate().skip(1) {
            let mut out = Outgoing::new();
            chan.close(&mut out);
            outs.push((i, out));
        }
        pump(&mut chans, outs);
        for (i, chan) in chans.iter_mut().enumerate() {
            assert!(chan.is_closed(), "party {i} closed");
            assert!(chan.take_closed(), "closed event emitted once");
            assert!(!chan.take_closed());
        }
        // The pre-close payload was delivered.
        assert_eq!(chans[3].take_delivery().unwrap().data, b"final");
    }

    #[test]
    fn one_close_does_not_terminate() {
        // t+1 = 2 requests are needed; a single closer leaves the channel
        // open for everyone else.
        let ctxs = group(4, 1);
        let mut chans = channels(&ctxs, "ac-halfclose");
        let mut out = Outgoing::new();
        chans[0].close(&mut out);
        // Other parties keep sending so rounds continue.
        let mut out1 = Outgoing::new();
        chans[1].send(b"x".to_vec(), &mut out1);
        pump(&mut chans, vec![(0, out), (1, out1)]);
        for chan in &chans {
            assert!(!chan.is_closed());
        }
        assert!(!chans[0].can_send(), "closer cannot send anymore");
        assert!(chans[1].can_send());
    }

    #[test]
    fn forged_entry_rejected() {
        let ctxs = group(4, 1);
        let mut chan = AtomicChannel::new(
            ProtocolId::new("ac-forge"),
            ctxs[0].clone(),
            AtomicChannelConfig::default(),
        );
        let payload = Payload {
            origin: PartyId(2),
            seq: 0,
            kind: PayloadKind::App,
            data: b"evil".to_vec(),
        };
        // Signature by the wrong party.
        let statement = statement_entry(&ProtocolId::new("ac-forge"), 0, &payload);
        let sig = ctxs[3].keys().sig_key.sign(&statement);
        let entry = Entry {
            payload,
            signer: PartyId(2),
            sig,
        };
        chan.handle(
            PartyId(2),
            &ProtocolId::new("ac-forge"),
            &Body::AcEntry { round: 0, entry },
            &mut Outgoing::new(),
        );
        assert!(chan.entries.get(&0).is_none_or(|m| m.is_empty()));
    }

    #[test]
    #[should_panic(expected = "closing or closed")]
    fn send_after_close_panics() {
        let ctxs = group(4, 1);
        let mut chan = AtomicChannel::new(
            ProtocolId::new("ac-sac"),
            ctxs[0].clone(),
            AtomicChannelConfig::default(),
        );
        let mut out = Outgoing::new();
        chan.close(&mut out);
        chan.send(b"too late".to_vec(), &mut out);
    }

    #[test]
    fn batch_size_respects_fairness() {
        let ctxs = group(7, 2);
        let chan = AtomicChannel::new(
            ProtocolId::new("ac-f"),
            ctxs[0].clone(),
            AtomicChannelConfig {
                fairness: Some(3), // t+1
                order: CandidateOrder::Fixed,
            },
        );
        assert_eq!(chan.batch_size(), 7 - 3 + 1);
        let default = AtomicChannel::new(
            ProtocolId::new("ac-fd"),
            ctxs[0].clone(),
            AtomicChannelConfig::default(),
        );
        assert_eq!(default.batch_size(), 2 + 1, "paper setup: batch = t+1");
    }
}
