//! A compact, self-describing-free binary codec for protocol messages.
//!
//! SINTRA's Java implementation hand-serialized its messages; no serde
//! format crate is available offline, so this crate does the same. The
//! codec is deliberately simple: fixed-width big-endian integers,
//! length-prefixed byte strings, and a one-byte discriminant per enum.
//! Everything that crosses the (simulated or real) network implements
//! [`Wire`], and the encoding doubles as the byte string that MACs and
//! signatures are computed over.

use std::error::Error;
use std::fmt;

use crate::invariant::OrInvariant;

use sintra_bigint::Ubig;

/// Maximum accepted length prefix (16 MiB), bounding allocation from
/// malicious inputs.
pub const MAX_LEN: usize = 16 * 1024 * 1024;

/// An error produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded [`MAX_LEN`].
    LengthOverflow,
    /// An enum discriminant byte was not recognized.
    BadDiscriminant(u8),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::LengthOverflow => write!(f, "length prefix exceeds limit"),
            WireError::BadDiscriminant(d) => write!(f, "unknown discriminant byte {d}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl Error for WireError {}

/// A cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.data.len() < n {
            return Err(WireError::UnexpectedEnd);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Takes exactly `N` raw bytes as an array.
    pub fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Takes every byte not yet consumed (cannot fail).
    pub fn take_rest(&mut self) -> &'a [u8] {
        let rest = self.data;
        self.data = &[];
        rest
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take_arr()?))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take_arr()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow);
        }
        self.take(len)
    }
}

/// Types with a canonical binary encoding.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes into a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes from a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input or leftovers.
    fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(data);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(v)
    }
}

/// Writes a `u32` big-endian length prefix, checked rather than
/// truncated: a length that does not fit the prefix is a protocol
/// invariant violation, never a silent wrap-around.
pub fn put_len(buf: &mut Vec<u8>, len: usize) {
    let len32 = u32::try_from(len).or_invariant("length exceeds the u32 wire prefix");
    buf.extend_from_slice(&len32.to_be_bytes());
}

/// Writes a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_len(buf, data.len());
    buf.extend_from_slice(data);
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

/// Version of the wire format described by `WIRE_SCHEMA.json`.
///
/// `sintra-lint`'s `wire-schema` rule extracts the codec schema from the
/// `Wire` impls and diffs it against the committed golden; any schema
/// change must bump this constant in the same commit, making wire breaks
/// an explicit, reviewable event rather than a silent drift.
pub const WIRE_FORMAT_VERSION: u32 = 1;

/// Wire discriminants. Explicit and append-only: renumbering or reusing
/// a tag byte is a wire-format break (`sintra-lint`'s `wire-stability`
/// rule bans raw tag literals so every tag lives here, under a name).
const TAG_FALSE: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_NONE: u8 = 0;
const TAG_SOME: u8 = 1;
const TAG_SIGSHARE_SHOUP: u8 = 0;
const TAG_SIGSHARE_MULTI: u8 = 1;
const TAG_THSIG_SHOUP: u8 = 0;
const TAG_THSIG_MULTI: u8 = 1;

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(if *self { TAG_TRUE } else { TAG_FALSE });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_FALSE => Ok(false),
            TAG_TRUE => Ok(true),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.bytes()?.to_vec())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        String::from_utf8(r.bytes()?.to_vec()).map_err(|_| WireError::BadDiscriminant(0xFF))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(TAG_NONE),
            Some(v) => {
                buf.push(TAG_SOME);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_NONE => Ok(None),
            TAG_SOME => Ok(Some(T::decode(r)?)),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

/// Vectors of non-byte elements (byte vectors have a dedicated impl).
macro_rules! impl_wire_vec {
    ($($t:ty),*) => {$(
        impl Wire for Vec<$t> {
            fn encode(&self, buf: &mut Vec<u8>) {
                put_len(buf, self.len());
                for item in self {
                    item.encode(buf);
                }
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let len = r.u32()? as usize;
                if len > MAX_LEN {
                    return Err(WireError::LengthOverflow);
                }
                let mut out = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    out.push(<$t>::decode(r)?);
                }
                Ok(out)
            }
        }
    )*};
}

impl Wire for Ubig {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, &self.to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Ubig::from_be_bytes(r.bytes()?))
    }
}

impl Wire for [u8; 32] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_arr()
    }
}

// --- crypto types ---------------------------------------------------------

use sintra_crypto::coin::CoinShare;
use sintra_crypto::dleq::DleqProof;
use sintra_crypto::rsa::RsaSignature;
use sintra_crypto::thenc::{Ciphertext, DecryptionShare};
use sintra_crypto::thsig::{ShoupShareProof, SigShare, SigShareBody, ThresholdSignature};

impl Wire for DleqProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.commit_g.encode(buf);
        self.commit_u.encode(buf);
        self.response.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DleqProof {
            commit_g: Ubig::decode(r)?,
            commit_u: Ubig::decode(r)?,
            response: Ubig::decode(r)?,
        })
    }
}

impl Wire for CoinShare {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.index as u32).encode(buf);
        self.value.encode(buf);
        self.proof.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CoinShare {
            index: r.u32()? as usize,
            value: Ubig::decode(r)?,
            proof: DleqProof::decode(r)?,
        })
    }
}

impl Wire for RsaSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RsaSignature(Ubig::decode(r)?))
    }
}

impl Wire for ShoupShareProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.challenge.encode(buf);
        self.response.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShoupShareProof {
            challenge: Ubig::decode(r)?,
            response: Ubig::decode(r)?,
        })
    }
}

impl Wire for SigShare {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.index as u32).encode(buf);
        match &self.body {
            SigShareBody::ShoupRsa { sigma, proof } => {
                buf.push(TAG_SIGSHARE_SHOUP);
                sigma.encode(buf);
                proof.encode(buf);
            }
            SigShareBody::Multi { sig } => {
                buf.push(TAG_SIGSHARE_MULTI);
                sig.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let index = r.u32()? as usize;
        let body = match r.u8()? {
            TAG_SIGSHARE_SHOUP => SigShareBody::ShoupRsa {
                sigma: Ubig::decode(r)?,
                proof: ShoupShareProof::decode(r)?,
            },
            TAG_SIGSHARE_MULTI => SigShareBody::Multi {
                sig: RsaSignature::decode(r)?,
            },
            d => return Err(WireError::BadDiscriminant(d)),
        };
        Ok(SigShare { index, body })
    }
}

impl_wire_vec!(CoinShare, SigShare, DecryptionShare, Ubig);

impl Wire for ThresholdSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ThresholdSignature::ShoupRsa(y) => {
                buf.push(TAG_THSIG_SHOUP);
                y.encode(buf);
            }
            ThresholdSignature::Multi(sigs) => {
                buf.push(TAG_THSIG_MULTI);
                put_len(buf, sigs.len());
                for (index, sig) in sigs {
                    (*index as u32).encode(buf);
                    sig.encode(buf);
                }
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_THSIG_SHOUP => Ok(ThresholdSignature::ShoupRsa(Ubig::decode(r)?)),
            TAG_THSIG_MULTI => {
                let len = r.u32()? as usize;
                if len > MAX_LEN {
                    return Err(WireError::LengthOverflow);
                }
                let mut sigs = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let index = r.u32()? as usize;
                    sigs.push((index, RsaSignature::decode(r)?));
                }
                Ok(ThresholdSignature::Multi(sigs))
            }
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for Ciphertext {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.data.encode(buf);
        self.label.encode(buf);
        self.u.encode(buf);
        self.u_bar.encode(buf);
        self.e.encode(buf);
        self.f.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Ciphertext {
            data: Vec::<u8>::decode(r)?,
            label: Vec::<u8>::decode(r)?,
            u: Ubig::decode(r)?,
            u_bar: Ubig::decode(r)?,
            e: Ubig::decode(r)?,
            f: Ubig::decode(r)?,
        })
    }
}

impl Wire for DecryptionShare {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.index as u32).encode(buf);
        self.value.encode(buf);
        self.proof.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DecryptionShare {
            index: r.u32()? as usize,
            value: Ubig::decode(r)?,
            proof: DleqProof::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(b"hello".to_vec());
        roundtrip(Vec::<u8>::new());
        roundtrip("protocol/1/ba".to_string());
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip(Ubig::from_hex("deadbeefcafef00d1234").unwrap());
        roundtrip(Ubig::zero());
        roundtrip([7u8; 32]);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = 0xDEAD_BEEFu32.to_bytes();
        assert_eq!(u32::from_bytes(&bytes[..3]), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert_eq!(Vec::<u8>::from_bytes(&buf), Err(WireError::LengthOverflow));
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::BadDiscriminant(2)));
    }

    #[test]
    fn crypto_share_roundtrip() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let group = sintra_crypto::fixtures::schnorr_group(128).unwrap();
        let (public, secrets) = sintra_crypto::coin::CoinScheme::deal(&group, 4, 2, &mut rng);
        let scheme = sintra_crypto::coin::CoinScheme::new(group, public);
        let share = scheme.release_share(b"c", &secrets[1]);
        let decoded = CoinShare::from_bytes(&share.to_bytes()).unwrap();
        assert_eq!(decoded, share);
        assert!(scheme.verify_share(b"c", &decoded));
    }

    #[test]
    fn threshold_signature_roundtrip() {
        let sig = ThresholdSignature::Multi(vec![
            (0, RsaSignature(Ubig::from(5u64))),
            (3, RsaSignature(Ubig::from(7u64))),
        ]);
        roundtrip(sig);
        roundtrip(ThresholdSignature::ShoupRsa(Ubig::from(11u64)));
    }
}
