//! SINTRA protocol state machines.
//!
//! This crate implements the protocol stack of *Secure Intrusion-tolerant
//! Replication on the Internet* (Cachin & Poritz, DSN 2002) as **sans-IO
//! state machines**: each protocol consumes incoming messages and local
//! requests, and emits outgoing messages plus locally observable outputs.
//! Runtimes (the deterministic discrete-event simulator and the threaded
//! runtime in `sintra-net`) drive these machines; the protocols themselves
//! never touch a socket or a clock, which is what makes them fully
//! asynchronous — exactly the system model of the paper.
//!
//! The stack, bottom to top (paper §2):
//!
//! * [`broadcast`]: Bracha reliable broadcast; Reiter-style consistent
//!   (echo) broadcast with threshold signatures; verifiable consistent
//!   broadcast with transferable closing messages.
//! * [`agreement`]: randomized binary Byzantine agreement (Cachin–Kursawe–
//!   Shoup) with justified votes and the common coin; validated and biased
//!   variants; multi-valued agreement (Cachin–Kursawe–Petzold–Shoup).
//! * [`channel`]: the atomic broadcast channel (state-machine replication),
//!   secure causal atomic broadcast (threshold-encrypted), and the
//!   aggregated reliable/consistent channels.
//! * [`node`]: a per-party container that hosts protocol instances and
//!   routes messages between them.
//!
//! All protocols tolerate `t < n/3` Byzantine parties and never rely on
//! timing: progress requires only that messages between honest parties are
//! eventually delivered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod broadcast;
pub mod channel;
mod config;
mod ids;
pub mod invariant;
pub mod message;
pub mod node;
mod outgoing;
pub mod preverify;
pub mod validator;
pub mod wire;

pub use config::GroupContext;
pub use ids::{PartyId, ProtocolId};
pub use outgoing::{Event, Outgoing, Recipient, TimerRequest};
