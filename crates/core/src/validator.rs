//! External-validity callbacks for validated agreement (paper §2.3–2.4).
//!
//! Validated agreement changes the standard validity condition: an honest
//! party may only decide a value accompanied by validation data accepted
//! by an application-supplied predicate. These are SINTRA's
//! `BinaryValidator` / `ArrayValidator` interfaces.

use std::fmt;
use std::sync::Arc;

/// The boxed predicate behind a [`BinaryValidator`].
type BinaryPredicate = Arc<dyn Fn(bool, &[u8]) -> bool + Send + Sync>;

/// The boxed predicate behind an [`ArrayValidator`].
type ArrayPredicate = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// Predicate validating a binary agreement value with its proof.
///
/// Cloneable and shareable across protocol instances.
#[derive(Clone)]
pub struct BinaryValidator(BinaryPredicate);

impl BinaryValidator {
    /// Wraps a predicate.
    pub fn new(f: impl Fn(bool, &[u8]) -> bool + Send + Sync + 'static) -> Self {
        BinaryValidator(Arc::new(f))
    }

    /// Accepts every value — the configuration used by plain (non-
    /// validated) binary agreement.
    pub fn always() -> Self {
        BinaryValidator::new(|_, _| true)
    }

    /// Evaluates the predicate.
    pub fn is_valid(&self, value: bool, proof: &[u8]) -> bool {
        (self.0)(value, proof)
    }
}

impl fmt::Debug for BinaryValidator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BinaryValidator(..)")
    }
}

/// Predicate validating a multi-valued agreement value.
#[derive(Clone)]
pub struct ArrayValidator(ArrayPredicate);

impl ArrayValidator {
    /// Wraps a predicate.
    pub fn new(f: impl Fn(&[u8]) -> bool + Send + Sync + 'static) -> Self {
        ArrayValidator(Arc::new(f))
    }

    /// Accepts every value.
    pub fn always() -> Self {
        ArrayValidator::new(|_| true)
    }

    /// Evaluates the predicate.
    pub fn is_valid(&self, value: &[u8]) -> bool {
        (self.0)(value)
    }
}

impl fmt::Debug for ArrayValidator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ArrayValidator(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_validator_dispatch() {
        let v = BinaryValidator::new(|value, proof| value == (proof == b"yes"));
        assert!(v.is_valid(true, b"yes"));
        assert!(v.is_valid(false, b"no"));
        assert!(!v.is_valid(true, b"no"));
        assert!(BinaryValidator::always().is_valid(false, b""));
    }

    #[test]
    fn array_validator_dispatch() {
        let v = ArrayValidator::new(|value| value.len() > 2);
        assert!(v.is_valid(b"abc"));
        assert!(!v.is_valid(b"ab"));
        assert!(ArrayValidator::always().is_valid(b""));
    }

    #[test]
    fn validators_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<BinaryValidator>();
        check::<ArrayValidator>();
    }
}
