//! Outgoing-message collection and locally observable protocol events.

use sintra_telemetry::TraceEvent;

use crate::ids::{PartyId, ProtocolId};
use crate::message::{Body, Envelope, Payload};

/// Destination of an outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipient {
    /// All parties, including the sender itself (self-delivery is routed
    /// locally by the runtime, matching the paper's model where a party is
    /// also a receiver of its own broadcasts).
    All,
    /// A single party.
    One(PartyId),
}

/// A timer request from a protocol instance.
///
/// Timers exist *only* for liveness heuristics (the optimistic channel's
/// leader-suspicion timeout); no safety property of any protocol depends
/// on them — the asynchronous model would forbid that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerRequest {
    /// The instance that wants to be woken.
    pub pid: ProtocolId,
    /// Opaque token handed back on expiry.
    pub token: u64,
    /// Requested delay in milliseconds.
    pub delay_ms: u64,
}

/// Sink for messages a protocol step wants transmitted.
///
/// Protocol state machines never perform IO; they push `(recipient,
/// envelope)` pairs here and the runtime transmits them.
/// Protocol steps also emit structured [`TraceEvent`]s here when tracing
/// is switched on; runtimes drain them, stamp a timestamp and forward
/// them to their recorder. With tracing off (the default) a trace call
/// is a single branch.
#[derive(Debug, Default)]
pub struct Outgoing {
    messages: Vec<(Recipient, Envelope)>,
    timers: Vec<TimerRequest>,
    traces: Vec<TraceEvent>,
    tracing: bool,
    cause: Option<(usize, u64)>,
}

impl Outgoing {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message to a single party.
    pub fn send_to(&mut self, to: PartyId, pid: &ProtocolId, body: Body) {
        self.messages.push((
            Recipient::One(to),
            Envelope {
                pid: pid.clone(),
                send_seq: 0,
                body,
            },
        ));
    }

    /// Queues a message to every party (including self).
    pub fn send_all(&mut self, pid: &ProtocolId, body: Body) {
        self.messages.push((
            Recipient::All,
            Envelope {
                pid: pid.clone(),
                send_seq: 0,
                body,
            },
        ));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Requests a wake-up call for `pid` after roughly `delay_ms`.
    pub fn set_timer(&mut self, pid: &ProtocolId, token: u64, delay_ms: u64) {
        self.timers.push(TimerRequest {
            pid: pid.clone(),
            token,
            delay_ms,
        });
    }

    /// Drains the queued timer requests.
    pub fn drain_timers(&mut self) -> Vec<TimerRequest> {
        std::mem::take(&mut self.timers)
    }

    /// Drains the queued messages.
    pub fn drain(&mut self) -> Vec<(Recipient, Envelope)> {
        std::mem::take(&mut self.messages)
    }

    /// Switches structured trace emission on or off (off by default).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Whether trace emission is on. Protocol code should check this
    /// before building a [`TraceEvent`] so disabled tracing costs only
    /// this branch.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Sets the causal origin for the current protocol step: the
    /// `(sender_party, send_seq)` of the network message being
    /// processed, or `None` for locally-triggered steps (client
    /// requests, timer expiries). The runtime calls this before
    /// dispatching into a state machine; every trace queued during the
    /// step inherits it, so protocol code never threads causality by
    /// hand.
    pub fn set_cause(&mut self, cause: Option<(usize, u64)>) {
        self.cause = cause;
    }

    /// The causal origin of the step in progress, if any.
    pub fn cause(&self) -> Option<(usize, u64)> {
        self.cause
    }

    /// Queues a trace event (dropped unless tracing is on). Events
    /// without an explicit cause inherit the current step's causal
    /// origin (see [`Outgoing::set_cause`]).
    pub fn trace(&mut self, event: TraceEvent) {
        if self.tracing {
            let mut event = event;
            if event.cause.is_none() {
                event.cause = self.cause;
            }
            self.traces.push(event);
        }
    }

    /// Queues a trace event built lazily: `make` runs only when tracing
    /// is on, so call sites pay one branch instead of duplicating the
    /// `if out.tracing()` gate around every event construction.
    pub fn trace_with(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.tracing {
            self.trace(make());
        }
    }

    /// Drains the queued trace events.
    pub fn drain_traces(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.traces)
    }

    /// Iterates over queued messages without draining.
    pub fn iter(&self) -> impl Iterator<Item = &(Recipient, Envelope)> {
        self.messages.iter()
    }
}

/// A locally observable protocol output, surfaced by [`crate::node::Node`]
/// to the runtime and application.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A broadcast primitive delivered its payload.
    BroadcastDelivered {
        /// Instance that delivered.
        pid: ProtocolId,
        /// The payload.
        payload: Vec<u8>,
    },
    /// A binary agreement instance decided.
    BinaryDecided {
        /// Instance that decided.
        pid: ProtocolId,
        /// Decision value.
        value: bool,
        /// Validation data for the decided value (validated agreement).
        proof: Option<Vec<u8>>,
    },
    /// A multi-valued agreement instance decided.
    MultiDecided {
        /// Instance that decided.
        pid: ProtocolId,
        /// The agreed-upon value.
        value: Vec<u8>,
    },
    /// A channel delivered the next payload in its (total or per-sender)
    /// order.
    ChannelDelivered {
        /// The channel instance.
        pid: ProtocolId,
        /// The delivered payload with its origin identification.
        payload: Payload,
    },
    /// A secure causal atomic channel fixed the position of a ciphertext
    /// (the `receiveCiphertext` point of the Java API) before decryption.
    CiphertextOrdered {
        /// The channel instance.
        pid: ProtocolId,
        /// Origin of the ciphertext payload.
        origin: PartyId,
        /// Origin sequence number.
        seq: u64,
        /// The ciphertext bytes.
        ciphertext: Vec<u8>,
    },
    /// A channel terminated after `t + 1` close requests.
    ChannelClosed {
        /// The channel instance.
        pid: ProtocolId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_collects_and_drains() {
        let pid = ProtocolId::new("x");
        let mut out = Outgoing::new();
        assert!(out.is_empty());
        out.send_all(&pid, Body::RbSend(vec![1]));
        out.send_to(PartyId(2), &pid, Body::RbReady([0; 32]));
        assert_eq!(out.len(), 2);
        let drained = out.drain();
        assert_eq!(drained.len(), 2);
        assert!(out.is_empty());
        assert_eq!(drained[0].0, Recipient::All);
        assert_eq!(drained[1].0, Recipient::One(PartyId(2)));
    }

    #[test]
    fn traces_inherit_step_cause() {
        let mut out = Outgoing::new();
        out.set_tracing(true);
        out.set_cause(Some((3, 17)));
        out.trace(TraceEvent::new(0, "rb", "rb").phase("echo"));
        // An explicit cause wins over the step cause.
        out.trace(
            TraceEvent::new(0, "rb", "rb")
                .phase("ready")
                .caused_by(1, 2),
        );
        out.set_cause(None);
        out.trace_with(|| TraceEvent::new(0, "rb", "rb").phase("deliver"));
        let traces = out.drain_traces();
        assert_eq!(traces[0].cause, Some((3, 17)));
        assert_eq!(traces[1].cause, Some((1, 2)));
        assert_eq!(traces[2].cause, None);
    }

    #[test]
    fn trace_with_skips_construction_when_off() {
        let mut out = Outgoing::new();
        out.trace_with(|| unreachable!("tracing is off"));
        assert!(out.drain_traces().is_empty());
    }
}
