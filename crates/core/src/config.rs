//! Per-party protocol context: group parameters and key material.

use std::sync::{Arc, Mutex};

use sintra_crypto::dealer::PartyKeys;
use sintra_crypto::rsa::RsaSignature;
use sintra_crypto::thsig::{SigShare, ThresholdSigPublic, ThresholdSignature};

use crate::ids::PartyId;
use crate::preverify::{rsa_token, share_token, threshold_token, PreToken, TokenCache};

/// Everything a protocol instance needs to know about its environment:
/// the group size, resilience, this party's identity and key material —
/// plus the party's pre-verification receipt cache (see
/// [`crate::preverify`]).
///
/// Cheaply cloneable (`Arc` inside); every instance hosted by a party
/// shares one context, so receipts deposited by the runtime are visible
/// at every instance's verify sites.
#[derive(Debug, Clone)]
pub struct GroupContext {
    keys: Arc<PartyKeys>,
    preverified: Arc<Mutex<TokenCache>>,
}

impl GroupContext {
    /// Wraps dealt key material.
    pub fn new(keys: Arc<PartyKeys>) -> Self {
        GroupContext {
            keys,
            preverified: Arc::new(Mutex::new(TokenCache::default())),
        }
    }

    /// This party's identity.
    pub fn me(&self) -> PartyId {
        PartyId(self.keys.index)
    }

    /// Group size `n`.
    pub fn n(&self) -> usize {
        self.keys.n()
    }

    /// Corruption bound `t`.
    pub fn t(&self) -> usize {
        self.keys.t()
    }

    /// The Byzantine quorum `⌈(n + t + 1) / 2⌉` used by both broadcast
    /// primitives (any two quorums intersect in an honest party).
    ///
    /// All threshold arithmetic lives in this file so protocol code
    /// never spells out `n`/`t` expressions inline — `sintra-lint`'s
    /// `quorum-arithmetic` rule enforces that.
    pub fn quorum(&self) -> usize {
        // lint:allow(quorum-arithmetic): definitional — this helper is where the bound lives
        (self.n() + self.t() + 1).div_ceil(2)
    }

    /// `n - t`: the number of messages a party can wait for without
    /// risking deadlock (paper §2: up to `t` parties may never answer).
    pub fn n_minus_t(&self) -> usize {
        // lint:allow(quorum-arithmetic): definitional — this helper is where the bound lives
        self.n() - self.t()
    }

    /// `t + 1`: the smallest set of parties guaranteed to contain at
    /// least one honest member. Used wherever a single honest witness
    /// suffices — echo amplification, close requests, complaints.
    pub fn one_honest(&self) -> usize {
        // lint:allow(quorum-arithmetic): definitional — this helper is where the bound lives
        self.t() + 1
    }

    /// `t`: the corruption budget itself, for "strictly more than the
    /// faulty parties could produce alone" comparisons
    /// (`count > fault_budget()` is equivalent to `count >= one_honest()`).
    pub fn fault_budget(&self) -> usize {
        self.t()
    }

    /// `2t + 1`: Bracha's ready quorum. A set of `2t + 1` ready senders
    /// contains `t + 1` honest ones, enough to make every honest party
    /// eventually ready, so delivery at this bound is irrevocable.
    pub fn ready_quorum(&self) -> usize {
        // lint:allow(quorum-arithmetic): definitional — this helper is where the bound lives
        2 * self.t() + 1
    }

    /// The atomic-channel batch size `n - f + 1` that guarantees
    /// `f`-fairness for a fairness parameter `t + 1 <= f <= n - t`
    /// (paper §2.6): any batch assembled from `n - t` received entry
    /// sets intersects the queues of at least `f` honest parties.
    pub fn fairness_batch(&self, f: usize) -> usize {
        // lint:allow(quorum-arithmetic): definitional — this helper is where the bound lives
        self.n() - f + 1
    }

    /// Access to this party's key material.
    pub fn keys(&self) -> &PartyKeys {
        &self.keys
    }

    /// Iterator over all party identities.
    pub fn parties(&self) -> impl Iterator<Item = PartyId> {
        (0..self.n()).map(PartyId)
    }

    /// Whether `id` is a valid party index in this group.
    pub fn is_valid_party(&self, id: PartyId) -> bool {
        id.0 < self.n()
    }

    // --- pre-verification receipt cache ---------------------------------
    //
    // The runtime deposits tokens for checks the off-thread verify stage
    // already performed; handlers consume them at their verify sites via
    // the `*_cached` helpers below, falling back to the real check on a
    // miss. See `crate::preverify` for the soundness argument.

    /// Deposits receipts for checks performed by the verify stage.
    pub fn note_preverified<I: IntoIterator<Item = PreToken>>(&self, tokens: I) {
        let mut cache = self.preverified.lock().unwrap();
        for token in tokens {
            cache.insert(token);
        }
    }

    /// Consumes a receipt, reporting whether the check already ran.
    pub fn consume_preverified(&self, token: &PreToken) -> bool {
        self.preverified.lock().unwrap().consume(token)
    }

    /// Number of outstanding (deposited, unconsumed) receipts.
    pub fn preverified_len(&self) -> usize {
        self.preverified.lock().unwrap().len()
    }

    /// [`ThresholdSigPublic::verify_share`] with receipt short-circuit.
    pub fn verify_share_cached(
        &self,
        public: &ThresholdSigPublic,
        statement: &[u8],
        share: &SigShare,
    ) -> bool {
        self.consume_preverified(&share_token(statement, share))
            || public.verify_share(statement, share)
    }

    /// [`ThresholdSigPublic::verify`] with receipt short-circuit.
    pub fn verify_threshold_cached(
        &self,
        public: &ThresholdSigPublic,
        statement: &[u8],
        sig: &ThresholdSignature,
    ) -> bool {
        self.consume_preverified(&threshold_token(statement, sig)) || public.verify(statement, sig)
    }

    /// Verifies `signer`'s standard RSA signature over `statement`, with
    /// receipt short-circuit.
    pub fn verify_party_sig_cached(
        &self,
        signer: PartyId,
        statement: &[u8],
        sig: &RsaSignature,
    ) -> bool {
        self.consume_preverified(&rsa_token(statement, sig))
            || self
                .keys
                .common
                .sig_publics
                .get(signer.0)
                .is_some_and(|key| key.verify(statement, sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sintra_crypto::dealer::{deal, DealerConfig};

    #[test]
    fn quorum_arithmetic() {
        let mut rng = StdRng::seed_from_u64(1);
        let parties = deal(&DealerConfig::small(4, 1), &mut rng).unwrap();
        let ctx = GroupContext::new(Arc::new(parties[2].clone()));
        assert_eq!(ctx.me(), PartyId(2));
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.t(), 1);
        assert_eq!(ctx.quorum(), 3);
        assert_eq!(ctx.n_minus_t(), 3);
        assert_eq!(ctx.one_honest(), 2);
        assert_eq!(ctx.fault_budget(), 1);
        assert_eq!(ctx.ready_quorum(), 3);
        assert_eq!(ctx.fairness_batch(3), 2);
        assert_eq!(ctx.fairness_batch(2), 3);
        assert_eq!(ctx.parties().count(), 4);
        assert!(ctx.is_valid_party(PartyId(3)));
        assert!(!ctx.is_valid_party(PartyId(4)));
    }
}
