//! Per-party protocol context: group parameters and key material.

use std::sync::Arc;

use sintra_crypto::dealer::PartyKeys;

use crate::ids::PartyId;

/// Everything a protocol instance needs to know about its environment:
/// the group size, resilience, this party's identity and key material.
///
/// Cheaply cloneable (`Arc` inside); every instance hosted by a party
/// shares one context.
#[derive(Debug, Clone)]
pub struct GroupContext {
    keys: Arc<PartyKeys>,
}

impl GroupContext {
    /// Wraps dealt key material.
    pub fn new(keys: Arc<PartyKeys>) -> Self {
        GroupContext { keys }
    }

    /// This party's identity.
    pub fn me(&self) -> PartyId {
        PartyId(self.keys.index)
    }

    /// Group size `n`.
    pub fn n(&self) -> usize {
        self.keys.n()
    }

    /// Corruption bound `t`.
    pub fn t(&self) -> usize {
        self.keys.t()
    }

    /// The Byzantine quorum `⌈(n + t + 1) / 2⌉` used by both broadcast
    /// primitives (any two quorums intersect in an honest party).
    pub fn quorum(&self) -> usize {
        (self.n() + self.t() + 1).div_ceil(2)
    }

    /// `n - t`: the number of messages a party can wait for without
    /// risking deadlock.
    pub fn n_minus_t(&self) -> usize {
        self.n() - self.t()
    }

    /// Access to this party's key material.
    pub fn keys(&self) -> &PartyKeys {
        &self.keys
    }

    /// Iterator over all party identities.
    pub fn parties(&self) -> impl Iterator<Item = PartyId> {
        (0..self.n()).map(PartyId)
    }

    /// Whether `id` is a valid party index in this group.
    pub fn is_valid_party(&self, id: PartyId) -> bool {
        id.0 < self.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sintra_crypto::dealer::{deal, DealerConfig};

    #[test]
    fn quorum_arithmetic() {
        let mut rng = StdRng::seed_from_u64(1);
        let parties = deal(&DealerConfig::small(4, 1), &mut rng).unwrap();
        let ctx = GroupContext::new(Arc::new(parties[2].clone()));
        assert_eq!(ctx.me(), PartyId(2));
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.t(), 1);
        assert_eq!(ctx.quorum(), 3);
        assert_eq!(ctx.n_minus_t(), 3);
        assert_eq!(ctx.parties().count(), 4);
        assert!(ctx.is_valid_party(PartyId(3)));
        assert!(!ctx.is_valid_party(PartyId(4)));
    }
}
