//! Streaming trace sink: continuous, bounded-overhead spill of
//! [`TraceEvent`]s to rotating per-party `.jsonl` files.
//!
//! The flight recorder keeps a bounded ring that is only externalized on
//! a stall or on demand — fine for wedged runs, useless for explaining a
//! *healthy-but-slow* one, because by the time anyone asks, the
//! interesting rounds have been evicted. A [`TraceStream`] fixes that:
//! the server loop appends every drained event to a front buffer under a
//! mutex (one lock + one push on the hot path), and an off-thread
//! flusher periodically swaps the buffer for an empty spare
//! (double-buffering — serialization and file I/O never run under the
//! producer's lock), renders the events as JSON lines and appends them
//! to the current segment file.
//!
//! Disk use is bounded two ways: segments rotate at
//! [`rotate_bytes`](TraceStreamConfig::rotate_bytes) and only the newest
//! [`max_segments`](TraceStreamConfig::max_segments) are kept; the front
//! buffer is capped at [`buffer_events`](TraceStreamConfig::buffer_events)
//! and overflow is *counted, never blocked on* — a `{"dropped":n}` line
//! records the gap so the analyzer knows the stream is incomplete rather
//! than silently missing causality.
//!
//! Each segment file starts with a header line carrying [`TRACE_SCHEMA`]
//! and the party index; every following line is either one
//! [`TraceEvent::to_json`] object or a drop marker. Dropping the
//! `TraceStream` drains whatever is buffered and joins the flusher, so a
//! server loop that owns its sink flushes the tail of the trace on
//! shutdown before the process can exit.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::trace::TraceEvent;

/// Schema tag written in every segment's header line.
pub const TRACE_SCHEMA: &str = "sintra-trace-v1";

/// Tuning for one party's streaming trace sink.
#[derive(Debug, Clone)]
pub struct TraceStreamConfig {
    /// Directory segment files are written into (created if absent).
    pub dir: PathBuf,
    /// Size threshold at which the current segment closes and a new one
    /// opens. The threshold is checked after each flush, so a segment
    /// may overshoot by one flush worth of lines.
    pub rotate_bytes: u64,
    /// Newest segments kept on disk; older ones are deleted at rotation.
    pub max_segments: usize,
    /// Front-buffer capacity in events; overflow increments the dropped
    /// counter instead of blocking the server loop.
    pub buffer_events: usize,
    /// Longest the flusher sleeps between drains. Events may sit in the
    /// front buffer for up to this long before reaching disk.
    pub flush_interval: Duration,
}

impl Default for TraceStreamConfig {
    fn default() -> Self {
        TraceStreamConfig {
            dir: PathBuf::from("."),
            rotate_bytes: 8 * 1024 * 1024,
            max_segments: 8,
            buffer_events: 16 * 1024,
            flush_interval: Duration::from_millis(25),
        }
    }
}

impl TraceStreamConfig {
    /// A streaming config writing into `dir`, defaults elsewhere.
    pub fn into_dir(dir: impl Into<PathBuf>) -> Self {
        TraceStreamConfig {
            dir: dir.into(),
            ..TraceStreamConfig::default()
        }
    }

    /// The segment path for one party/segment pair.
    pub fn segment_path(&self, party: usize, segment: u64) -> PathBuf {
        self.dir.join(segment_file_name(party, segment))
    }
}

/// The canonical segment file name, shared with readers that glob for
/// `sintra-trace-*.jsonl`.
pub fn segment_file_name(party: usize, segment: u64) -> String {
    format!("sintra-trace-{party}-{segment:04}.jsonl")
}

/// Front buffer shared between the producer and the flusher.
struct Buf {
    events: Vec<TraceEvent>,
    dropped: u64,
}

struct Shared {
    buf: Mutex<Buf>,
    wake: Condvar,
    stop: AtomicBool,
    dropped_total: AtomicU64,
    written_total: AtomicU64,
}

/// One party's streaming sink: cheap `record` on the server loop, file
/// I/O on a dedicated flusher thread. Dropping it flushes the tail.
pub struct TraceStream {
    shared: Arc<Shared>,
    capacity: usize,
    flusher: Option<JoinHandle<()>>,
}

impl TraceStream {
    /// Creates the trace directory, opens the first segment and spawns
    /// the flusher thread.
    pub fn spawn(party: usize, config: TraceStreamConfig) -> std::io::Result<TraceStream> {
        std::fs::create_dir_all(&config.dir)?;
        let capacity = config.buffer_events.max(16);
        let shared = Arc::new(Shared {
            buf: Mutex::new(Buf {
                events: Vec::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            dropped_total: AtomicU64::new(0),
            written_total: AtomicU64::new(0),
        });
        let mut writer = SegmentWriter::open(party, config)?;
        let flusher_shared = Arc::clone(&shared);
        let flusher = std::thread::Builder::new()
            .name(format!("sintra-trace-{party}"))
            .spawn(move || flusher_loop(&flusher_shared, &mut writer))?;
        Ok(TraceStream {
            shared,
            capacity,
            flusher: Some(flusher),
        })
    }

    /// Appends one event to the front buffer (or counts it dropped when
    /// the buffer is full). Constant-time; never does I/O.
    pub fn record(&self, event: TraceEvent) {
        if self.shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let mut buf = match self.shared.buf.lock() {
            Ok(buf) => buf,
            Err(poisoned) => poisoned.into_inner(),
        };
        if buf.events.len() >= self.capacity {
            buf.dropped += 1;
            self.shared.dropped_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.events.push(event);
        // Wake the flusher early only when the buffer is half full —
        // otherwise the interval cadence drains it, and the hot path
        // pays no syscall-shaped cost per event.
        if buf.events.len() * 2 >= self.capacity {
            self.shared.wake.notify_one();
        }
    }

    /// Events written to disk so far.
    pub fn written(&self) -> u64 {
        self.shared.written_total.load(Ordering::Relaxed)
    }

    /// Events dropped to front-buffer overflow so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped_total.load(Ordering::Relaxed)
    }

    /// Stops the flusher after a final drain; called by `Drop`. The
    /// buffered tail is on disk when this returns.
    pub fn finish(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_one();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TraceStream {
    fn drop(&mut self) {
        self.finish();
    }
}

impl std::fmt::Debug for TraceStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStream")
            .field("written", &self.written())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// The flusher-side file state: the open segment, its size, rotation.
struct SegmentWriter {
    party: usize,
    config: TraceStreamConfig,
    segment: u64,
    bytes: u64,
    file: BufWriter<File>,
}

impl SegmentWriter {
    fn open(party: usize, config: TraceStreamConfig) -> std::io::Result<SegmentWriter> {
        let (file, bytes) = open_segment(&config.segment_path(party, 0), party, 0)?;
        Ok(SegmentWriter {
            party,
            config,
            segment: 0,
            bytes,
            file,
        })
    }

    /// Appends one line, tracking the segment size.
    fn line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Rotates when the current segment crossed the size threshold,
    /// deleting the segment that falls off the retention window.
    fn maybe_rotate(&mut self) -> std::io::Result<()> {
        if self.bytes < self.config.rotate_bytes {
            return Ok(());
        }
        self.file.flush()?;
        self.segment += 1;
        let path = self.config.segment_path(self.party, self.segment);
        let (file, bytes) = open_segment(&path, self.party, self.segment)?;
        self.file = file;
        self.bytes = bytes;
        let keep = self.config.max_segments.max(1) as u64;
        if self.segment >= keep {
            let stale = self.config.segment_path(self.party, self.segment - keep);
            let _ = std::fs::remove_file(stale);
        }
        Ok(())
    }
}

fn open_segment(
    path: &Path,
    party: usize,
    segment: u64,
) -> std::io::Result<(BufWriter<File>, u64)> {
    let mut file = BufWriter::new(File::create(path)?);
    let header =
        format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"party\":{party},\"segment\":{segment}}}\n");
    file.write_all(header.as_bytes())?;
    Ok((file, header.len() as u64))
}

/// The flusher: sleep until woken or the interval elapses, swap the
/// front buffer for the spare, serialize and append outside the lock,
/// rotate, repeat; a final drain runs after `stop` is observed.
fn flusher_loop(shared: &Shared, writer: &mut SegmentWriter) {
    let mut spare: Vec<TraceEvent> = Vec::new();
    let interval = writer.config.flush_interval;
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let (mut batch, dropped) = {
            let mut buf = match shared.buf.lock() {
                Ok(buf) => buf,
                Err(poisoned) => poisoned.into_inner(),
            };
            if !stopping && buf.events.is_empty() && buf.dropped == 0 {
                let (guard, _) = match shared.wake.wait_timeout(buf, interval) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                buf = guard;
            }
            std::mem::swap(&mut buf.events, &mut spare);
            let dropped = std::mem::take(&mut buf.dropped);
            (std::mem::take(&mut spare), dropped)
        };
        let mut failed = false;
        for event in &batch {
            if writer.line(&event.to_json()).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            shared
                .written_total
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            if dropped > 0 {
                let _ = writer.line(&format!("{{\"dropped\":{dropped}}}"));
            }
            let _ = writer.file.flush();
            let _ = writer.maybe_rotate();
        } else {
            eprintln!(
                "sintra: party {} trace stream write failed; stopping the sink",
                writer.party
            );
            shared.stop.store(true, Ordering::SeqCst);
            batch.clear();
            return;
        }
        batch.clear();
        spare = batch;
        if stopping {
            // `stop` was already visible before this drain began, so the
            // producer can have added nothing since the swap: the tail
            // is flushed and the segment is complete.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sintra-stream-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ev(party: usize, seq: u64) -> TraceEvent {
        let mut e = TraceEvent::new(party, "atomic/ba/1", "abba")
            .phase("pre-vote")
            .round(seq)
            .caused_by(1, seq);
        e.time_us = 10 + seq;
        e
    }

    #[test]
    fn writes_header_then_events_and_flushes_on_drop() {
        let dir = temp_dir("basic");
        let config = TraceStreamConfig::into_dir(&dir);
        let path = config.segment_path(3, 0);
        let mut stream = TraceStream::spawn(3, config).expect("spawn stream");
        for seq in 0..5 {
            stream.record(ev(3, seq));
        }
        stream.finish();
        let body = std::fs::read_to_string(&path).expect("segment exists");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 6, "header + 5 events: {body}");
        assert!(lines[0].contains(TRACE_SCHEMA));
        assert!(lines[0].contains("\"party\":3"));
        for (i, line) in lines[1..].iter().enumerate() {
            assert!(line.contains(&format!("\"round\":{i}")), "line {i}: {line}");
            assert!(line.contains("\"cause\":[1,"), "line {i}: {line}");
        }
        assert_eq!(stream.written(), 5);
        assert_eq!(stream.dropped(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_segments_and_prunes_old_ones() {
        let dir = temp_dir("rotate");
        let config = TraceStreamConfig {
            rotate_bytes: 256,
            max_segments: 2,
            flush_interval: Duration::from_millis(1),
            ..TraceStreamConfig::into_dir(&dir)
        };
        let config_probe = config.clone();
        let mut stream = TraceStream::spawn(0, config).expect("spawn stream");
        for seq in 0..200 {
            stream.record(ev(0, seq));
            if seq % 16 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        stream.finish();
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        segments.sort();
        assert!(segments.len() >= 2, "rotation happened: {segments:?}");
        assert!(
            segments.len() <= 2,
            "retention pruned old segments: {segments:?}"
        );
        assert!(
            !config_probe.segment_path(0, 0).exists(),
            "segment 0 pruned"
        );
        for path in &segments {
            let body = std::fs::read_to_string(path).expect("segment readable");
            assert!(body.lines().next().expect("header").contains(TRACE_SCHEMA));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overflow_counts_drops_and_marks_the_stream() {
        let dir = temp_dir("overflow");
        let config = TraceStreamConfig {
            buffer_events: 16,
            // Effectively never flush on its own: everything queued
            // before `finish` contends for the 16-slot buffer.
            flush_interval: Duration::from_secs(3600),
            ..TraceStreamConfig::into_dir(&dir)
        };
        let path = config.segment_path(1, 0);
        let mut stream = TraceStream::spawn(1, config).expect("spawn stream");
        // Half-full wake threshold is 8; queue a burst and give the
        // flusher no chance by out-racing it: drops are counted, not
        // blocked on, whichever interleaving happens.
        for seq in 0..64 {
            stream.record(ev(1, seq));
        }
        stream.finish();
        let written = stream.written();
        let dropped = stream.dropped();
        assert_eq!(written + dropped, 64, "every event accounted for");
        let body = std::fs::read_to_string(&path).expect("segment exists");
        if dropped > 0 {
            assert!(
                body.lines().any(|l| l.starts_with("{\"dropped\":")),
                "drop marker present: {body}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
