//! Per-run rollup reports (JSON + pretty table).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::json_string;
use crate::{HistogramSnapshot, MetricsSnapshot, CRYPTO_WORK_MILLI};

/// Histogram name runtimes record end-to-end delivery latency under
/// (microseconds from client send to local channel delivery).
pub const DELIVERY_LATENCY: &str = "delivery_latency_us";

/// Counter names the report treats as first-class columns; everything
/// else a scope accumulated shows up in the row's `extra` map (per
/// message-kind counts, for instance).
const COLUMNS: [&str; 7] = [
    "msgs_sent",
    "msgs_delivered",
    "msgs_dropped",
    "bytes_sent",
    "rounds",
    "deliveries",
    "crypto_work_milli",
];

/// Totals for one reporting scope (one top-level protocol instance,
/// i.e. one channel in the paper's Table 1 terminology).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProtocolRow {
    /// Reporting scope (root protocol instance id).
    pub scope: String,
    /// Point-to-point messages handed to the network layer.
    pub msgs_sent: u64,
    /// Messages that reached a running party's state machine.
    pub msgs_delivered: u64,
    /// Messages dropped by the link model or a crashed receiver.
    pub msgs_dropped: u64,
    /// Total payload bytes across sent messages.
    pub bytes_sent: u64,
    /// Protocol round/epoch advances (ABBA rounds, MVBA loops, epochs).
    pub rounds: u64,
    /// Application-level deliveries (decided values, ordered payloads).
    pub deliveries: u64,
    /// Attributed crypto work in milliunits (1000 = one 1024-bit
    /// modular exponentiation).
    pub crypto_work_milli: u64,
    /// Remaining counters for this scope, e.g. per message kind.
    pub extra: BTreeMap<String, u64>,
    /// End-to-end delivery latency distribution in microseconds
    /// ([`DELIVERY_LATENCY`]), when the runtime recorded one.
    pub latency: Option<HistogramSnapshot>,
}

impl ProtocolRow {
    /// Attributed crypto work in work units (1.0 = one 1024-bit
    /// modexp).
    pub fn crypto_work(&self) -> f64 {
        self.crypto_work_milli as f64 / CRYPTO_WORK_MILLI
    }

    fn add(&mut self, other: &ProtocolRow) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_delivered += other.msgs_delivered;
        self.msgs_dropped += other.msgs_dropped;
        self.bytes_sent += other.bytes_sent;
        self.rounds += other.rounds;
        self.deliveries += other.deliveries;
        self.crypto_work_milli += other.crypto_work_milli;
        for (k, v) in &other.extra {
            *self.extra.entry(k.clone()).or_insert(0) += v;
        }
        if let Some(theirs) = &other.latency {
            match &mut self.latency {
                Some(mine) => mine.merge(theirs),
                None => self.latency = Some(theirs.clone()),
            }
        }
    }
}

/// Rollup of one finished run: a label, the party count, how long the
/// run took, and one [`ProtocolRow`] per reporting scope.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Free-form run label (experiment name, bench id, …).
    pub label: String,
    /// Number of parties in the run.
    pub parties: usize,
    /// Run duration in microseconds (virtual or wall, runtime-defined).
    pub duration_us: u64,
    /// One row per scope, ordered by scope name.
    pub rows: Vec<ProtocolRow>,
}

impl RunReport {
    /// Builds a report from a metrics snapshot.
    pub fn from_snapshot(
        label: impl Into<String>,
        parties: usize,
        duration_us: u64,
        snapshot: &MetricsSnapshot,
    ) -> Self {
        let mut rows: BTreeMap<String, ProtocolRow> = BTreeMap::new();
        let row_for = |rows: &mut BTreeMap<String, ProtocolRow>, scope: &String| {
            rows.entry(scope.clone()).or_insert_with(|| ProtocolRow {
                scope: scope.clone(),
                ..ProtocolRow::default()
            });
        };
        for (scope, counters) in &snapshot.counters {
            row_for(&mut rows, scope);
            let row = rows.get_mut(scope).expect("just inserted");
            for (name, &value) in counters {
                match name.as_str() {
                    "msgs_sent" => row.msgs_sent = value,
                    "msgs_delivered" => row.msgs_delivered = value,
                    "msgs_dropped" => row.msgs_dropped = value,
                    "bytes_sent" => row.bytes_sent = value,
                    "rounds" => row.rounds = value,
                    "deliveries" => row.deliveries = value,
                    "crypto_work_milli" => row.crypto_work_milli = value,
                    _ => {
                        row.extra.insert(name.clone(), value);
                    }
                }
            }
        }
        for (scope, hists) in &snapshot.histograms {
            if let Some(h) = hists.get(DELIVERY_LATENCY) {
                if !h.is_empty() {
                    row_for(&mut rows, scope);
                    rows.get_mut(scope).expect("just inserted").latency = Some(h.clone());
                }
            }
        }
        RunReport {
            label: label.into(),
            parties,
            duration_us,
            rows: rows.into_values().collect(),
        }
    }

    /// Sum of every row.
    pub fn totals(&self) -> ProtocolRow {
        let mut total = ProtocolRow {
            scope: "total".to_string(),
            ..ProtocolRow::default()
        };
        for row in &self.rows {
            total.add(row);
        }
        total
    }

    /// Row for one scope, if present.
    pub fn row(&self, scope: &str) -> Option<&ProtocolRow> {
        self.rows.iter().find(|r| r.scope == scope)
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\":{},\"parties\":{},\"duration_us\":{},\"channels\":[",
            json_string(&self.label),
            self.parties,
            self.duration_us,
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"scope\":{},\"msgs_sent\":{},\"msgs_delivered\":{},\"msgs_dropped\":{},\"bytes_sent\":{},\"rounds\":{},\"deliveries\":{},\"crypto_work\":{:.3},\"by_kind\":{{",
                json_string(&row.scope),
                row.msgs_sent,
                row.msgs_delivered,
                row.msgs_dropped,
                row.bytes_sent,
                row.rounds,
                row.deliveries,
                row.crypto_work(),
            );
            for (j, (name, value)) in row.extra.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(name), value);
            }
            out.push('}');
            if let Some(lat) = &row.latency {
                let _ = write!(
                    out,
                    ",\"latency_us\":{{\"count\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
                    lat.count,
                    lat.quantile(0.5),
                    lat.quantile(0.95),
                    lat.quantile(1.0),
                );
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the report as an aligned text table with a totals line.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report: {} ({} parties, {} µs)",
            self.label, self.parties, self.duration_us
        );
        let header = [
            "channel",
            "sent",
            "delivered",
            "dropped",
            "bytes",
            "rounds",
            "deliv",
            "crypto",
            "p50µs",
            "p95µs",
            "maxµs",
        ];
        let lat_cell = |row: &ProtocolRow, q: f64| match &row.latency {
            Some(lat) => lat.quantile(q).to_string(),
            None => "-".to_string(),
        };
        let mut table: Vec<[String; 11]> = Vec::with_capacity(self.rows.len() + 2);
        table.push(header.map(str::to_string));
        for row in self.rows.iter().chain(std::iter::once(&self.totals())) {
            table.push([
                row.scope.clone(),
                row.msgs_sent.to_string(),
                row.msgs_delivered.to_string(),
                row.msgs_dropped.to_string(),
                row.bytes_sent.to_string(),
                row.rounds.to_string(),
                row.deliveries.to_string(),
                format!("{:.3}", row.crypto_work()),
                lat_cell(row, 0.5),
                lat_cell(row, 0.95),
                lat_cell(row, 1.0),
            ]);
        }
        let mut widths = [0usize; 11];
        for line in &table {
            for (w, cell) in widths.iter_mut().zip(line.iter()) {
                // Char count, not byte length: the header has a µ.
                *w = (*w).max(cell.chars().count());
            }
        }
        for (i, line) in table.iter().enumerate() {
            let mut rendered = String::new();
            for (col, (cell, w)) in line.iter().zip(widths.iter()).enumerate() {
                if col > 0 {
                    rendered.push_str("  ");
                }
                if col == 0 {
                    rendered.push_str(&format!("{cell:<w$}"));
                } else {
                    rendered.push_str(&format!("{cell:>w$}"));
                }
            }
            let _ = writeln!(out, "{}", rendered.trim_end());
            if i == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                let _ = writeln!(out, "{}", "-".repeat(total));
            }
        }
        out
    }
}

/// Names treated as dedicated report columns (exported so runtimes and
/// tests use the same spelling).
pub const fn report_columns() -> [&'static str; 7] {
    COLUMNS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, Recorder};

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter_add("atomic", "msgs_sent", 120);
        r.counter_add("atomic", "msgs_delivered", 110);
        r.counter_add("atomic", "msgs_dropped", 10);
        r.counter_add("atomic", "bytes_sent", 48_000);
        r.counter_add("atomic", "rounds", 6);
        r.counter_add("atomic", "deliveries", 12);
        r.counter_add("atomic", "crypto_work_milli", 2500);
        r.counter_add("atomic", "ba-pre-vote", 24);
        r.counter_add("vcb", "msgs_sent", 16);
        r.counter_add("vcb", "bytes_sent", 4096);
        r.snapshot()
    }

    #[test]
    fn report_rows_map_counters_to_columns() {
        let report = RunReport::from_snapshot("t1", 4, 9000, &sample_snapshot());
        assert_eq!(report.rows.len(), 2);
        let atomic = report.row("atomic").expect("row");
        assert_eq!(atomic.msgs_sent, 120);
        assert_eq!(atomic.msgs_delivered, 110);
        assert_eq!(atomic.msgs_dropped, 10);
        assert_eq!(atomic.bytes_sent, 48_000);
        assert_eq!(atomic.rounds, 6);
        assert_eq!(atomic.deliveries, 12);
        assert!((atomic.crypto_work() - 2.5).abs() < 1e-9);
        assert_eq!(atomic.extra["ba-pre-vote"], 24);
    }

    #[test]
    fn totals_sum_rows() {
        let report = RunReport::from_snapshot("t1", 4, 9000, &sample_snapshot());
        let totals = report.totals();
        assert_eq!(totals.msgs_sent, 136);
        assert_eq!(totals.bytes_sent, 52_096);
        assert_eq!(totals.extra["ba-pre-vote"], 24);
    }

    #[test]
    fn json_contains_all_channels() {
        let report = RunReport::from_snapshot("t1", 4, 9000, &sample_snapshot());
        let json = report.to_json();
        assert!(json.starts_with("{\"label\":\"t1\""));
        assert!(json.contains("\"scope\":\"atomic\""));
        assert!(json.contains("\"scope\":\"vcb\""));
        assert!(json.contains("\"crypto_work\":2.500"));
        assert!(json.contains("\"by_kind\":{\"ba-pre-vote\":24}"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn table_renders_header_rows_and_totals() {
        let report = RunReport::from_snapshot("t1", 4, 9000, &sample_snapshot());
        let table = report.to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("t1"));
        assert!(lines[1].starts_with("channel"));
        // title + header + separator + 2 rows + totals
        assert_eq!(lines.len(), 6);
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[5].starts_with("total"));
    }

    #[test]
    fn latency_histograms_surface_in_table_and_json() {
        let r = MetricsRegistry::new();
        r.counter_add("atomic", "msgs_sent", 4);
        r.counter_add("rc", "msgs_sent", 1);
        for v in [900u64, 1000, 1100, 9000] {
            r.observe("atomic", DELIVERY_LATENCY, v);
        }
        let report = RunReport::from_snapshot("lat", 4, 9000, &r.snapshot());
        let atomic = report.row("atomic").expect("row");
        let lat = atomic.latency.as_ref().expect("latency recorded");
        assert_eq!(lat.count, 4);
        // rc recorded no latency: its cells render as "-".
        assert!(report.row("rc").expect("row").latency.is_none());
        let json = report.to_json();
        assert!(json.contains("\"latency_us\":{\"count\":4,\"p50\":"));
        let table = report.to_table();
        let header = table.lines().nth(1).expect("header");
        assert!(header.contains("p50µs") && header.contains("maxµs"));
        let rc_line = table.lines().find(|l| l.starts_with("rc")).expect("rc row");
        assert!(rc_line.trim_end().ends_with('-'));
        // Totals row folds the single distribution in unchanged.
        assert_eq!(report.totals().latency.as_ref().unwrap().count, 4);
    }

    #[test]
    fn histogram_only_scope_still_gets_a_row() {
        let r = MetricsRegistry::new();
        r.observe("ghost", DELIVERY_LATENCY, 5);
        let report = RunReport::from_snapshot("g", 1, 0, &r.snapshot());
        assert!(report.row("ghost").expect("row").latency.is_some());
    }

    #[test]
    fn empty_snapshot_gives_empty_report() {
        let report = RunReport::from_snapshot("none", 0, 0, &MetricsSnapshot::default());
        assert!(report.rows.is_empty());
        assert_eq!(
            report.to_json(),
            "{\"label\":\"none\",\"parties\":0,\"duration_us\":0,\"channels\":[]}"
        );
    }
}
