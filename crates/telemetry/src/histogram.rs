//! Lock-free power-of-two histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`. 64 buckets cover the full `u64` range.
pub const BUCKETS: usize = 64;

/// A histogram over `u64` values with power-of-two buckets.
///
/// All updates are relaxed atomic increments, so recording from many
/// threads never blocks; `count` and `sum` are tracked exactly while the
/// distribution is approximated by the bucket layout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 maps to bucket 0, otherwise
/// `floor(log2(value)) + 1`.
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive lower bound of a bucket.
pub(crate) fn bucket_low(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // Bucket 63 covers [2^62, u64::MAX]; the index can't exceed it.
        let idx = bucket_index(value).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`] for the layout).
    pub buckets: [u64; BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (exact, from `sum`/`count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the lower bound of the
    /// bucket containing the q-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_low(i);
            }
        }
        bucket_low(BUCKETS - 1)
    }

    /// True when no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another snapshot's observations into this one (used by
    /// report totals rows to combine per-scope distributions).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_power_of_two_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64 - 1 + 1);
    }

    #[test]
    fn bucket_bounds_match_indices() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX / 2] {
            let i = bucket_index(v).min(BUCKETS - 1);
            assert!(bucket_low(i) <= v, "low bound of bucket {i} above {v}");
            if i + 1 < BUCKETS {
                assert!(v < bucket_low(i + 1), "{v} not below bucket {} low", i + 1);
            }
        }
    }

    #[test]
    fn observe_tracks_exact_count_and_sum() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1024] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1035);
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[1], 1); // the 1
        assert_eq!(s.buckets[3], 2); // the two 5s in [4, 8)
        assert_eq!(s.buckets[11], 1); // 1024 in [1024, 2048)
        assert!((s.mean() - 207.0).abs() < 1e-9);
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn merge_adds_buckets_count_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(3);
        a.observe(100);
        b.observe(3);
        b.observe(70_000);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 3 + 100 + 3 + 70_000);
        assert_eq!(s.buckets[bucket_index(3)], 2);
        assert_eq!(s.buckets[bucket_index(100)], 1);
        assert_eq!(s.buckets[bucket_index(70_000)], 1);
    }

    #[test]
    fn snapshot_merge_combines_distributions() {
        let a = Histogram::new();
        a.observe(10);
        let b = Histogram::new();
        b.observe(10);
        b.observe(5000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 5020);
        assert_eq!(sa.buckets[bucket_index(10)], 2);
        assert_eq!(sa.buckets[bucket_index(5000)], 1);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(8);
        }
        for _ in 0..10 {
            h.observe(4096);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), bucket_low(bucket_index(8)));
        assert_eq!(s.quantile(0.99), bucket_low(bucket_index(4096)));
        assert_eq!(s.quantile(0.0), bucket_low(bucket_index(8)));
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }
}
