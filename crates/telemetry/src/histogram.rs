//! Lock-free log-linear histograms.
//!
//! Buckets follow a log-linear layout: each power-of-two octave is split
//! into [`SUB_BUCKETS`] equal-width sub-buckets, so the relative width of
//! any bucket is at most `1 / SUB_BUCKETS` of its lower bound. Quantile
//! estimates therefore carry a bounded relative error of
//! `1 / SUB_BUCKETS` (25%), versus up to 2× for plain power-of-two
//! buckets — tight enough that a reported p95 is trustworthy at a glance.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 4;

/// Number of buckets. Bucket 0 holds the value 0 and buckets 1–3 hold
/// the exact values 1, 2 and 3 (octaves narrower than [`SUB_BUCKETS`]
/// cannot be subdivided). Every later octave `[2^(k-1), 2^k)` for
/// `k >= 3` is split into [`SUB_BUCKETS`] equal sub-buckets of width
/// `2^(k-3)`, covering the full `u64` range.
pub const BUCKETS: usize = 4 + 62 * SUB_BUCKETS;

/// A histogram over `u64` values with log-linear buckets.
///
/// All updates are relaxed atomic increments, so recording from many
/// threads never blocks; `count` and `sum` are tracked exactly while the
/// distribution is approximated by the bucket layout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0–3 map to themselves; a value with
/// bit-length `k >= 3` lands in octave `k`'s sub-bucket
/// `(value - 2^(k-1)) / 2^(k-3)`.
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < 4 {
        return value as usize;
    }
    let k = (64 - value.leading_zeros()) as usize; // bit length, >= 3
    let sub = ((value - (1u64 << (k - 1))) >> (k - 3)) as usize;
    4 + (k - 3) * SUB_BUCKETS + sub
}

/// Inclusive lower bound of a bucket.
pub(crate) fn bucket_low(index: usize) -> u64 {
    if index < 4 {
        return index as u64;
    }
    let off = index - 4;
    let k = off / SUB_BUCKETS + 3;
    let sub = (off % SUB_BUCKETS) as u64;
    (1u64 << (k - 1)) + (sub << (k - 3))
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last one).
pub(crate) fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = bucket_index(value).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`] for the layout).
    pub buckets: [u64; BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (exact, from `sum`/`count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the lower bound of the
    /// bucket containing the q-th observation. With the log-linear
    /// layout the true value exceeds the estimate by at most
    /// `1 / SUB_BUCKETS` (25%) relative error.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_low(i);
            }
        }
        bucket_low(BUCKETS - 1)
    }

    /// True when no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another snapshot's observations into this one (used by
    /// report totals rows to combine per-scope distributions).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log_linear_layout() {
        // Exact small values.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        // Octave [4, 8): width-1 sub-buckets.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 5);
        assert_eq!(bucket_index(7), 7);
        // Octave [8, 16): width-2 sub-buckets.
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(15), 11);
        // Octave boundaries are new sub-bucket starts.
        assert_eq!(bucket_index(16), 12);
        assert_eq!(bucket_index(256), bucket_index(255) + 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_match_indices() {
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            7,
            8,
            9,
            15,
            16,
            1000,
            12_345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v).min(BUCKETS - 1);
            assert!(bucket_low(i) <= v, "low bound of bucket {i} above {v}");
            assert!(v <= bucket_high(i), "{v} above bucket {i} high bound");
            if i + 1 < BUCKETS {
                assert!(v < bucket_low(i + 1), "{v} not below bucket {} low", i + 1);
            }
        }
        // Buckets tile the range with no gaps.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap after bucket {i}"
            );
        }
    }

    #[test]
    fn observe_tracks_exact_count_and_sum() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1024] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1035);
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[1], 1); // the 1
        assert_eq!(s.buckets[bucket_index(5)], 2); // the two 5s
        assert_eq!(s.buckets[bucket_index(1024)], 1);
        assert!((s.mean() - 207.0).abs() < 1e-9);
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn merge_adds_buckets_count_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(3);
        a.observe(100);
        b.observe(3);
        b.observe(70_000);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 3 + 100 + 3 + 70_000);
        assert_eq!(s.buckets[bucket_index(3)], 2);
        assert_eq!(s.buckets[bucket_index(100)], 1);
        assert_eq!(s.buckets[bucket_index(70_000)], 1);
    }

    #[test]
    fn snapshot_merge_combines_distributions() {
        let a = Histogram::new();
        a.observe(10);
        let b = Histogram::new();
        b.observe(10);
        b.observe(5000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 5020);
        assert_eq!(sa.buckets[bucket_index(10)], 2);
        assert_eq!(sa.buckets[bucket_index(5000)], 1);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(8);
        }
        for _ in 0..10 {
            h.observe(4096);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), bucket_low(bucket_index(8)));
        assert_eq!(s.quantile(0.99), bucket_low(bucket_index(4096)));
        assert_eq!(s.quantile(0.0), bucket_low(bucket_index(8)));
    }

    /// The headline guarantee of the log-linear layout: any quantile
    /// estimate is a lower bound within `1/SUB_BUCKETS` relative error
    /// of the true order statistic. Checked exhaustively against a
    /// deterministic multi-decade distribution.
    #[test]
    fn quantile_relative_error_is_bounded() {
        let bound = 1.0 / SUB_BUCKETS as f64;
        // A deterministic LCG spreads values across six decades — the
        // shape of delivery-latency data (microseconds to seconds).
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut values: Vec<u64> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                // Pick a decade from the high bits, a mantissa below it.
                let decade = 10u64.pow((x >> 60) as u32 % 6 + 1);
                1 + (x >> 16) % decade
            })
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.05, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[rank] as f64;
            let est = s.quantile(q) as f64;
            assert!(est <= truth, "q={q}: estimate {est} above true {truth}");
            let rel = (truth - est) / truth;
            assert!(
                rel <= bound + 1e-9,
                "q={q}: relative error {rel:.4} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }
}
