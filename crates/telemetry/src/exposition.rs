//! Prometheus-style text exposition: render, parse, and windowed rates.
//!
//! The render side turns a [`MetricsSnapshot`] into the text format a
//! `curl` of a scrape endpoint returns; the parse side turns that text
//! back into queryable series for `sintra-top` and for scrape-based test
//! assertions. Both are dependency-free and deliberately minimal: one
//! metric line is `name{label="value",...} number`, comment lines start
//! with `#`.
//!
//! Series naming convention (documented in DESIGN.md §11):
//!
//! * counters — `sintra_<name>_total{party="..",scope=".."}`
//! * gauges — `sintra_<name>{party="..",scope=".."}`
//! * histograms — `sintra_<name>_bucket{..,le=".."}` (cumulative,
//!   inclusive upper bounds, last bucket `le="+Inf"`), plus
//!   `sintra_<name>_sum` and `sintra_<name>_count`
//!
//! Metric names are sanitized (`[^a-zA-Z0-9_]` → `_`, so the wire kind
//! `ba-pre-vote` becomes `ba_pre_vote`); the protocol instance scope and
//! the party id travel as labels. Output ordering is deterministic:
//! families sort lexicographically, series within a family sort by
//! scope, histogram buckets ascend by bound — successive scrapes diff
//! cleanly.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::{bucket_high, BUCKETS};
use crate::{HistogramSnapshot, MetricsSnapshot};

/// Prefix shared by every exposition series.
pub const SERIES_PREFIX: &str = "sintra_";

/// Maps a raw metric name onto the exposition alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders one label set as `{k="v",...}`; `extra` labels come first.
fn label_block(extra: &[(&str, &str)], scope: &str) -> String {
    let mut out = String::from("{");
    for (k, v) in extra {
        out.push_str(&format!("{k}=\"{v}\","));
    }
    out.push_str(&format!("scope=\"{scope}\"}}"));
    out
}

fn histogram_lines(
    out: &mut String,
    family: &str,
    extra: &[(&str, &str)],
    scope: &str,
    h: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        cumulative += h.buckets[i];
        let mut labels = String::from("{");
        for (k, v) in extra {
            labels.push_str(&format!("{k}=\"{v}\","));
        }
        labels.push_str(&format!("le=\"{}\",scope=\"{scope}\"}}", bucket_high(i)));
        out.push_str(&format!("{family}_bucket{labels} {cumulative}\n"));
    }
    let mut labels = String::from("{");
    for (k, v) in extra {
        labels.push_str(&format!("{k}=\"{v}\","));
    }
    labels.push_str(&format!("le=\"+Inf\",scope=\"{scope}\"}}"));
    out.push_str(&format!("{family}_bucket{labels} {}\n", h.count));
    let plain = label_block(extra, scope);
    out.push_str(&format!("{family}_sum{plain} {}\n", h.sum));
    out.push_str(&format!("{family}_count{plain} {}\n", h.count));
}

/// Renders a snapshot as exposition text. `extra_labels` are constant
/// labels stamped onto every series (typically `[("party", "0")]`).
pub fn render_exposition(snap: &MetricsSnapshot, extra_labels: &[(&str, &str)]) -> String {
    // family → scope → rendered value. BTreeMaps give the sorted,
    // deterministic series order the scrape contract promises.
    let mut counters: BTreeMap<String, BTreeMap<&str, u64>> = BTreeMap::new();
    for (scope, inner) in &snap.counters {
        for (name, value) in inner {
            counters
                .entry(format!("{SERIES_PREFIX}{}_total", sanitize(name)))
                .or_default()
                .insert(scope, *value);
        }
    }
    let mut gauges: BTreeMap<String, BTreeMap<&str, u64>> = BTreeMap::new();
    for (scope, inner) in &snap.gauges {
        for (name, value) in inner {
            gauges
                .entry(format!("{SERIES_PREFIX}{}", sanitize(name)))
                .or_default()
                .insert(scope, *value);
        }
    }
    let mut histograms: BTreeMap<String, BTreeMap<&str, &HistogramSnapshot>> = BTreeMap::new();
    for (scope, inner) in &snap.histograms {
        for (name, h) in inner {
            histograms
                .entry(format!("{SERIES_PREFIX}{}", sanitize(name)))
                .or_default()
                .insert(scope, h);
        }
    }

    let mut out = String::new();
    for (family, by_scope) in &counters {
        out.push_str(&format!("# TYPE {family} counter\n"));
        for (scope, value) in by_scope {
            out.push_str(&format!(
                "{family}{} {value}\n",
                label_block(extra_labels, scope)
            ));
        }
    }
    for (family, by_scope) in &gauges {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (scope, value) in by_scope {
            out.push_str(&format!(
                "{family}{} {value}\n",
                label_block(extra_labels, scope)
            ));
        }
    }
    for (family, by_scope) in &histograms {
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (scope, h) in by_scope {
            histogram_lines(&mut out, family, extra_labels, scope, h);
        }
    }
    out
}

/// One parsed series: a metric name, its labels, and the sample value.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric family name (e.g. `sintra_msgs_sent_total`).
    pub name: String,
    /// Label set, sorted by label name.
    pub labels: BTreeMap<String, String>,
    /// Sample value.
    pub value: f64,
}

impl Series {
    /// Whether this series carries every label in `want`.
    pub fn matches(&self, want: &[(&str, &str)]) -> bool {
        want.iter()
            .all(|(k, v)| self.labels.get(*k).map(String::as_str) == Some(*v))
    }
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample line, in document order.
    pub series: Vec<Series>,
}

/// Parses one `name{k="v",...} value` line (label block optional).
fn parse_line(line: &str, lineno: usize) -> Result<Series, String> {
    let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label block"))?;
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => match line.find(char::is_whitespace) {
            Some(ws) => (&line[..ws], None),
            None => return Err(err("missing value")),
        },
    };
    let name = name_part.trim();
    if name.is_empty() {
        return Err(err("empty metric name"));
    }
    let mut labels = BTreeMap::new();
    let value_text = match rest {
        Some((label_text, tail)) => {
            for pair in label_text.split(',').filter(|p| !p.trim().is_empty()) {
                let eq = pair.find('=').ok_or_else(|| err("label missing '='"))?;
                let key = pair[..eq].trim().to_string();
                let raw = pair[eq + 1..].trim();
                let quoted = raw
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| err("label value not quoted"))?;
                labels.insert(key, quoted.replace("\\\"", "\"").replace("\\\\", "\\"));
            }
            tail.trim()
        }
        None => line[name.len()..].trim(),
    };
    let value = value_text
        .split_whitespace()
        .next()
        .ok_or_else(|| err("missing value"))?;
    let value = if value == "+Inf" {
        f64::INFINITY
    } else {
        value.parse::<f64>().map_err(|_| err("unparseable value"))?
    };
    Ok(Series {
        name: name.to_string(),
        labels,
        value,
    })
}

impl Exposition {
    /// Parses exposition text; `#` comments and blank lines are skipped.
    pub fn parse(text: &str) -> Result<Exposition, String> {
        let mut series = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            series.push(parse_line(line, lineno)?);
        }
        Ok(Exposition { series })
    }

    /// First sample of `name` whose labels include all of `want`.
    pub fn value(&self, name: &str, want: &[(&str, &str)]) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name && s.matches(want))
            .map(|s| s.value)
    }

    /// Every sample of `name` whose labels include all of `want`.
    pub fn all(&self, name: &str, want: &[(&str, &str)]) -> Vec<&Series> {
        self.series
            .iter()
            .filter(|s| s.name == name && s.matches(want))
            .collect()
    }

    /// Distinct values of one label across every series.
    pub fn label_values(&self, label: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .series
            .iter()
            .filter_map(|s| s.labels.get(label).cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Approximate quantile of a parsed histogram family: the smallest
    /// bucket bound covering the q-th observation (an upper-bound
    /// estimate; `+Inf` falls back to the largest finite bound).
    pub fn quantile(&self, family: &str, want: &[(&str, &str)], q: f64) -> Option<f64> {
        let bucket_name = format!("{family}_bucket");
        let mut buckets: Vec<(f64, f64)> = self
            .all(&bucket_name, want)
            .iter()
            .filter_map(|s| {
                let le = s.labels.get("le")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().ok()?
                };
                Some((bound, s.value))
            })
            .collect();
        if buckets.is_empty() {
            return None;
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let total = buckets.last()?.1;
        if total <= 0.0 {
            return Some(0.0);
        }
        let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
        let mut best_finite = 0.0f64;
        for &(bound, cumulative) in &buckets {
            if bound.is_finite() {
                best_finite = bound;
            }
            if cumulative >= rank {
                return Some(if bound.is_finite() {
                    bound
                } else {
                    best_finite
                });
            }
        }
        Some(best_finite)
    }

    /// Windowed rate of a counter between an earlier scrape and this
    /// one: `(now - prev) / elapsed`, clamped to zero so a counter reset
    /// (process restart) never reports a negative rate.
    pub fn rate_since(
        &self,
        prev: &Exposition,
        name: &str,
        want: &[(&str, &str)],
        elapsed: Duration,
    ) -> Option<f64> {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        let now = self.value(name, want)?;
        let before = prev.value(name, want).unwrap_or(0.0);
        Some(((now - before) / secs).max(0.0))
    }
}

/// Windowed rates between two registry snapshots: for every counter
/// present in `next`, `(next - prev) / elapsed` in units per second,
/// clamped to zero. Returned as scope → name → rate with the same
/// deterministic ordering as the snapshots themselves.
pub fn counter_rates(
    prev: &MetricsSnapshot,
    next: &MetricsSnapshot,
    elapsed: Duration,
) -> BTreeMap<String, BTreeMap<String, f64>> {
    let secs = elapsed.as_secs_f64();
    let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    if secs <= 0.0 {
        return out;
    }
    for (scope, inner) in &next.counters {
        let row = out.entry(scope.clone()).or_default();
        for (name, value) in inner {
            let before = prev.counter(scope, name);
            row.insert(name.clone(), value.saturating_sub(before) as f64 / secs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, Recorder};

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter_add("atomic", "msgs_sent", 42);
        r.counter_add("atomic", "ba-pre-vote", 7);
        r.counter_add("vcb", "msgs_sent", 5);
        r.gauge_set("server", "stalled", 1);
        r.observe("atomic", "delivery_latency_us", 900);
        r.observe("atomic", "delivery_latency_us", 9000);
        r
    }

    #[test]
    fn render_is_sorted_and_sanitized() {
        let text = render_exposition(&sample_registry().snapshot(), &[("party", "2")]);
        let pre_vote = text
            .lines()
            .position(|l| l.starts_with("sintra_ba_pre_vote_total"))
            .expect("sanitized counter present");
        let msgs = text
            .lines()
            .position(|l| l.starts_with("sintra_msgs_sent_total"))
            .expect("counter present");
        assert!(pre_vote < msgs, "families are ordered lexicographically");
        assert!(text.contains("sintra_msgs_sent_total{party=\"2\",scope=\"atomic\"} 42"));
        assert!(text.contains("sintra_stalled{party=\"2\",scope=\"server\"} 1"));
        assert!(text.contains("sintra_delivery_latency_us_sum{party=\"2\",scope=\"atomic\"} 9900"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn render_is_deterministic_across_instances() {
        // Same metrics, different insertion order: identical bytes out.
        let a = sample_registry();
        let b = MetricsRegistry::new();
        b.observe("atomic", "delivery_latency_us", 9000);
        b.gauge_set("server", "stalled", 1);
        b.counter_add("vcb", "msgs_sent", 5);
        b.counter_add("atomic", "ba-pre-vote", 7);
        b.counter_add("atomic", "msgs_sent", 40);
        b.counter_add("atomic", "msgs_sent", 2);
        b.observe("atomic", "delivery_latency_us", 900);
        assert_eq!(
            render_exposition(&a.snapshot(), &[("party", "0")]),
            render_exposition(&b.snapshot(), &[("party", "0")])
        );
    }

    #[test]
    fn parse_round_trips_rendered_text() {
        let snap = sample_registry().snapshot();
        let text = render_exposition(&snap, &[("party", "3")]);
        let exp = Exposition::parse(&text).expect("parses");
        assert_eq!(
            exp.value("sintra_msgs_sent_total", &[("scope", "atomic")]),
            Some(42.0)
        );
        assert_eq!(
            exp.value(
                "sintra_msgs_sent_total",
                &[("scope", "vcb"), ("party", "3")]
            ),
            Some(5.0)
        );
        assert_eq!(
            exp.value("sintra_stalled", &[("scope", "server")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("sintra_delivery_latency_us_count", &[("scope", "atomic")]),
            Some(2.0)
        );
        assert_eq!(exp.label_values("party"), vec!["3".to_string()]);
        // Histogram buckets are cumulative and the +Inf bucket equals count.
        assert_eq!(
            exp.value(
                "sintra_delivery_latency_us_bucket",
                &[("scope", "atomic"), ("le", "+Inf")]
            ),
            Some(2.0)
        );
    }

    #[test]
    fn parsed_quantiles_track_histogram_quantiles() {
        let r = MetricsRegistry::new();
        for _ in 0..95 {
            r.observe("atomic", "delivery_latency_us", 1000);
        }
        for _ in 0..5 {
            r.observe("atomic", "delivery_latency_us", 50_000);
        }
        let text = render_exposition(&r.snapshot(), &[]);
        let exp = Exposition::parse(&text).expect("parses");
        let p50 = exp
            .quantile("sintra_delivery_latency_us", &[("scope", "atomic")], 0.5)
            .expect("p50");
        let p99 = exp
            .quantile("sintra_delivery_latency_us", &[("scope", "atomic")], 0.99)
            .expect("p99");
        // Upper-bound estimates within the bucket's 25% relative width.
        assert!((1000.0..=1250.0).contains(&p50), "p50 = {p50}");
        assert!((50_000.0..=62_500.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Exposition::parse("sintra_x{scope=\"a\" 1").is_err());
        assert!(Exposition::parse("sintra_x{scope=a} 1").is_err());
        assert!(Exposition::parse("sintra_x{scope=\"a\"} nope").is_err());
        assert!(Exposition::parse("justaname").is_err());
    }

    #[test]
    fn rates_are_windowed_and_non_negative() {
        let r = MetricsRegistry::new();
        r.counter_add("atomic", "msgs_sent", 10);
        let first = r.snapshot();
        r.counter_add("atomic", "msgs_sent", 30);
        r.counter_add("atomic", "deliveries", 4);
        let second = r.snapshot();
        let rates = counter_rates(&first, &second, Duration::from_secs(2));
        assert_eq!(rates["atomic"]["msgs_sent"], 15.0);
        assert_eq!(rates["atomic"]["deliveries"], 2.0);
        // A counter that went backwards (restart) clamps to zero.
        let reversed = counter_rates(&second, &first, Duration::from_secs(2));
        assert_eq!(reversed["atomic"]["msgs_sent"], 0.0);
        // Parsed-exposition rates agree.
        let a = Exposition::parse(&render_exposition(&first, &[])).expect("a");
        let b = Exposition::parse(&render_exposition(&second, &[])).expect("b");
        assert_eq!(
            b.rate_since(
                &a,
                "sintra_msgs_sent_total",
                &[("scope", "atomic")],
                Duration::from_secs(2)
            ),
            Some(15.0)
        );
    }
}
