//! The flight recorder: a bounded ring of recent trace events plus the
//! [`StateSnapshot`] contract protocol state machines implement so a
//! live party can be dumped to JSON.
//!
//! SINTRA's protocols terminate only probabilistically, so the failure
//! mode that matters in production is a *stall*, not a crash: some
//! instance silently stops making progress and nothing in a
//! counters-only view says which party, which instance, or which missing
//! quorum is responsible. The flight recorder keeps the last
//! `capacity` stamped [`TraceEvent`]s per party at all times (old events
//! are overwritten, so memory stays bounded no matter how long the run);
//! when a stall detector, an invariant violation or an explicit request
//! triggers a dump, the ring is drained and every live instance
//! serializes its phase through [`StateSnapshot`] into one JSON document.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::trace::json_string;
use crate::TraceEvent;

/// Identifier of the dump document layout, stored in every dump's
/// `schema` field so tools can reject files they don't understand.
pub const DUMP_SCHEMA: &str = "sintra-dump-v1";

/// Live-state serialization for one protocol instance.
///
/// State machines implement this next to their message handlers: the
/// snapshot must capture the *phase* a debugger needs — which quorum the
/// instance is collecting, how far it got, what it already committed —
/// without cloning payload bytes. `snapshot_json` renders one JSON
/// object; by convention it always carries `"pid"` and `"family"`
/// fields, plus whatever per-family counters describe the wait state
/// (echo/ready counts for reliable broadcast, round and vote tallies for
/// binary agreement, loop index and candidate set for multi-valued
/// agreement, queue depths for channels, seq/ack windows for links).
pub trait StateSnapshot {
    /// Whether the instance has started and not reached a terminal
    /// state — i.e. whether silence from this instance means *stalled*
    /// rather than *done* or *not started*.
    fn has_pending_work(&self) -> bool;

    /// Serializes the live phase as one JSON object.
    fn snapshot_json(&self) -> String;
}

/// Incremental builder for one snapshot JSON object, so
/// [`StateSnapshot`] implementations don't hand-roll comma placement.
///
/// Every snapshot starts with the two conventional fields (`pid`,
/// `family`); callers append whatever per-family state matters and
/// call [`SnapshotWriter::finish`].
#[derive(Debug)]
pub struct SnapshotWriter {
    out: String,
}

impl SnapshotWriter {
    /// Starts an object carrying the conventional `pid` and `family`
    /// fields.
    pub fn new(pid: &str, family: &str) -> Self {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"pid\":{},\"family\":{}",
            json_string(pid),
            json_string(family)
        );
        SnapshotWriter { out }
    }

    /// Appends an unsigned integer field.
    pub fn num(mut self, name: &str, value: u64) -> Self {
        let _ = write!(self.out, ",{}:{}", json_string(name), value);
        self
    }

    /// Appends a boolean field.
    pub fn flag(mut self, name: &str, value: bool) -> Self {
        let _ = write!(self.out, ",{}:{}", json_string(name), value);
        self
    }

    /// Appends a string field.
    pub fn text(mut self, name: &str, value: &str) -> Self {
        let _ = write!(self.out, ",{}:{}", json_string(name), json_string(value));
        self
    }

    /// Appends a field whose value is already rendered JSON (an array
    /// or nested object built by the caller).
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        let _ = write!(self.out, ",{}:{}", json_string(name), value);
        self
    }

    /// Appends an array of unsigned integers.
    pub fn nums(mut self, name: &str, values: impl IntoIterator<Item = u64>) -> Self {
        let _ = write!(self.out, ",{}:[", json_string(name));
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Closes and returns the object.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring buffer of recent stamped [`TraceEvent`]s.
///
/// Recording is one short uncontended mutex acquisition plus a ring
/// rotation — cheap enough to leave on for the lifetime of a server.
/// The buffer never grows past its capacity; the count of overwritten
/// events is reported alongside a drain so a dump states how much
/// history was lost.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one stamped event, evicting the oldest when full.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.inner.lock().expect("flight ring poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight ring poisoned")
            .events
            .len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the buffered events together with the number
    /// of older events that were overwritten since the last drain.
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let mut ring = self.inner.lock().expect("flight ring poisoned");
        let events = std::mem::take(&mut ring.events).into();
        let dropped = std::mem::take(&mut ring.dropped);
        (events, dropped)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Renders a complete dump document.
///
/// `instances` and `links` are pre-rendered JSON objects (each produced
/// by a [`StateSnapshot`] implementation); `events` is the drained ring
/// content, `dropped` the overwritten-event count. The layout is
/// [`DUMP_SCHEMA`]:
///
/// ```json
/// {"schema":"sintra-dump-v1","party":0,"reason":"stall","time_us":1,
///  "quiet_us":0,"instances":[...],"links":[...],
///  "dropped_events":0,"events":[...]}
/// ```
#[allow(clippy::too_many_arguments)]
pub fn render_dump(
    party: usize,
    reason: &str,
    time_us: u64,
    quiet_us: u64,
    instances: &[String],
    links: &[String],
    events: &[TraceEvent],
    dropped: u64,
) -> String {
    let mut out = String::with_capacity(1024 + events.len() * 96);
    let _ = write!(
        out,
        "{{\"schema\":{},\"party\":{},\"reason\":{},\"time_us\":{},\"quiet_us\":{},\"instances\":[",
        json_string(DUMP_SCHEMA),
        party,
        json_string(reason),
        time_us,
        quiet_us,
    );
    for (i, inst) in instances.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(inst);
    }
    out.push_str("],\"links\":[");
    for (i, link) in links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(link);
    }
    let _ = write!(out, "],\"dropped_events\":{dropped},\"events\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ev.to_json());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonValue};

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(TraceEvent::new(0, format!("p{i}"), "rb"));
        }
        assert_eq!(fr.len(), 3);
        let (events, dropped) = fr.drain();
        assert_eq!(dropped, 2);
        let pids: Vec<&str> = events.iter().map(|e| e.protocol.as_str()).collect();
        assert_eq!(pids, ["p2", "p3", "p4"]);
        // Drain resets both the buffer and the eviction count.
        assert_eq!(fr.drain(), (Vec::new(), 0));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let fr = FlightRecorder::new(0);
        fr.record(TraceEvent::new(0, "x", "rb"));
        assert_eq!(fr.len(), 1);
    }

    #[test]
    fn snapshot_writer_builds_valid_objects() {
        let s = SnapshotWriter::new("atomic/rb/1", "rb")
            .num("echoes", 2)
            .flag("delivered", false)
            .text("stage", "collecting")
            .nums("candidates", [0, 3])
            .raw("inner", "{\"x\":1}")
            .finish();
        let v = parse_json(&s).expect("parses");
        assert_eq!(
            v.get("pid").and_then(JsonValue::as_str),
            Some("atomic/rb/1")
        );
        assert_eq!(v.get("echoes").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(v.get("delivered").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            v.get("stage").and_then(JsonValue::as_str),
            Some("collecting")
        );
        assert_eq!(
            v.get("candidates")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("x"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn dump_renders_valid_json() {
        let events = vec![TraceEvent::new(1, "atomic", "atomic")
            .phase("round")
            .round(2)];
        let dump = render_dump(
            1,
            "stall",
            777,
            2_000_000,
            &[r#"{"pid":"atomic","family":"atomic","round":2}"#.to_string()],
            &[r#"{"peer":2,"next_seq":5}"#.to_string()],
            &events,
            4,
        );
        let v = parse_json(&dump).expect("dump parses");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some(DUMP_SCHEMA)
        );
        assert_eq!(v.get("party").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("reason").and_then(JsonValue::as_str), Some("stall"));
        assert_eq!(v.get("dropped_events").and_then(JsonValue::as_u64), Some(4));
        let instances = v.get("instances").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            instances[0].get("family").and_then(JsonValue::as_str),
            Some("atomic")
        );
        let evs = v.get("events").and_then(JsonValue::as_array).unwrap();
        assert_eq!(evs[0].get("round").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            v.get("links").and_then(JsonValue::as_array).unwrap()[0]
                .get("next_seq")
                .and_then(JsonValue::as_u64),
            Some(5)
        );
    }
}
