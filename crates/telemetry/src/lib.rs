//! Telemetry layer for the SINTRA stack.
//!
//! This crate is deliberately dependency-free so every other workspace
//! crate can use it without pulling anything into the hot path:
//!
//! * [`Recorder`] — the object-safe sink trait protocols and runtimes
//!   report into. The default [`NoopRecorder`] answers
//!   [`Recorder::enabled`] with `false`, so instrumented code pays one
//!   predictable branch when telemetry is off.
//! * [`MetricsRegistry`] — a concrete `Recorder` built from atomics:
//!   counters and gauges are `AtomicU64`s behind a sharded read-mostly
//!   map, histograms use log-linear buckets with relaxed atomic
//!   increments.
//! * [`render_exposition`] / [`Exposition`] — the live metrics plane's
//!   wire format: a Prometheus-style text rendering of a
//!   [`MetricsSnapshot`] with deterministic series ordering, a parser
//!   for it, and windowed [`counter_rates`] between successive
//!   snapshots.
//! * [`TraceEvent`] — one structured record per interesting protocol
//!   step (phase transitions, round advances, deliveries), stamped with
//!   virtual time by the simulator or wall-clock micros by the threaded
//!   runtime.
//! * [`TraceStream`] — the streaming trace sink: a double-buffered,
//!   off-thread writer spilling events to rotating per-party `.jsonl`
//!   segments (schema [`TRACE_SCHEMA`]), so healthy runs leave a causal
//!   trace behind, not just stalled ones.
//! * [`RunReport`] — a per-protocol-instance rollup of a finished run
//!   (message/byte/round/crypto-work totals) that renders as both JSON
//!   and a human-readable table, mirroring the per-channel breakdowns of
//!   Table 1 in the SINTRA paper.

#![forbid(unsafe_code)]

mod exposition;
mod flight;
mod histogram;
mod json;
mod recorder;
mod registry;
mod report;
mod stream;
mod trace;

pub use exposition::{counter_rates, render_exposition, Exposition, Series, SERIES_PREFIX};
pub use flight::{render_dump, FlightRecorder, SnapshotWriter, StateSnapshot, DUMP_SCHEMA};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS, SUB_BUCKETS};
pub use json::{parse_json, JsonError, JsonValue};
pub use recorder::{FanoutRecorder, NoopRecorder, Recorder};
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use report::{report_columns, ProtocolRow, RunReport, DELIVERY_LATENCY};
pub use stream::{segment_file_name, TraceStream, TraceStreamConfig, TRACE_SCHEMA};
pub use trace::{json_escape, TraceEvent};

/// Scale factor between floating-point crypto work units and the
/// integer `crypto_work_milli` counter: 1 work unit = 1000 milliunits.
pub const CRYPTO_WORK_MILLI: f64 = 1000.0;

/// Maps a protocol instance id to its reporting scope: the root segment
/// of the id, i.e. the top-level channel or protocol instance that all
/// sub-protocol activity is attributed to.
///
/// ```
/// assert_eq!(sintra_telemetry::root_scope("atomic/ba/7"), "atomic");
/// assert_eq!(sintra_telemetry::root_scope("vcb"), "vcb");
/// ```
pub fn root_scope(pid: &str) -> &str {
    match pid.find('/') {
        Some(i) => &pid[..i],
        None => pid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_scope_strips_sub_protocol_path() {
        assert_eq!(root_scope("atomic/rb/3/echo"), "atomic");
        assert_eq!(root_scope("abba"), "abba");
        assert_eq!(root_scope(""), "");
    }
}
