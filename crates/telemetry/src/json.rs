//! A minimal JSON reader for dump and trace files.
//!
//! The workspace is dependency-free (no serde), and the observability
//! tools — `sintra-inspect`, the Chrome trace exporter, schema checks in
//! tests — must read back the JSON the telemetry layer writes. This is a
//! small recursive-descent parser for exactly that: full JSON syntax,
//! numbers as `f64` (timestamps fit well inside the 2^53 exact range),
//! no streaming.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64`, if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads and consumes exactly 4 hex digits.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-12.5").unwrap(), JsonValue::Number(-12.5));
        assert_eq!(
            parse_json("\"hi\\n\"").unwrap(),
            JsonValue::String("hi\n".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_bool), Some(false));
    }

    #[test]
    fn roundtrips_trace_event_json() {
        let ev = crate::TraceEvent::new(3, "atomic/ba/1", "abba")
            .phase("round")
            .round(7)
            .bytes(64);
        let v = parse_json(&ev.to_json()).unwrap();
        assert_eq!(v.get("party").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("protocol").and_then(JsonValue::as_str),
            Some("atomic/ba/1")
        );
        assert_eq!(v.get("round").and_then(JsonValue::as_u64), Some(7));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            parse_json("\"\\u0041\\u00e9\"").unwrap(),
            JsonValue::String("Aé".to_string())
        );
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".to_string())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let e = parse_json("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
    }
}
