//! Concrete metrics recorder backed by atomics.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::{Histogram, HistogramSnapshot, Recorder, TraceEvent};

/// Number of shards in each metric map; scopes hash onto shards so
/// unrelated protocol instances rarely contend on the same lock.
const SHARDS: usize = 8;

/// scope → metric name → cell. Nested so the steady-state lookup
/// borrows `&str` and never allocates.
type MetricMap<V> = RwLock<HashMap<String, HashMap<&'static str, V>>>;

#[derive(Default)]
struct Shard {
    counters: MetricMap<Arc<AtomicU64>>,
    gauges: MetricMap<Arc<AtomicU64>>,
    histograms: MetricMap<Arc<Histogram>>,
}

/// A [`Recorder`] that accumulates metrics in shared atomics.
///
/// The steady-state path for a counter update is: hash the scope, take
/// a shard read lock, `fetch_add` on an existing `AtomicU64` — no
/// allocation, no exclusive lock. The write lock is only taken the
/// first time a `(scope, name)` pair is seen. Trace capture is off by
/// default (events are dropped) and can be switched on with
/// [`MetricsRegistry::set_trace_capture`].
#[derive(Default)]
pub struct MetricsRegistry {
    shards: [Shard; SHARDS],
    capture_traces: AtomicBool,
    traces: Mutex<Vec<TraceEvent>>,
}

fn shard_index(scope: &str) -> usize {
    // FNV-1a over the scope only, so all metrics of one protocol
    // instance live in one shard.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in scope.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

/// Looks up an existing cell under the read lock (no allocation).
fn read_cell<V: Clone>(map: &MetricMap<V>, scope: &str, name: &str) -> Option<V> {
    map.read()
        .expect("lock poisoned")
        .get(scope)
        .and_then(|inner| inner.get(name))
        .cloned()
}

/// Gets the cell for `(scope, name)`, creating it on first use.
fn cell<V: Clone + Default>(map: &MetricMap<V>, scope: &str, name: &'static str) -> V {
    if let Some(v) = read_cell(map, scope, name) {
        return v;
    }
    map.write()
        .expect("lock poisoned")
        .entry(scope.to_string())
        .or_default()
        .entry(name)
        .or_default()
        .clone()
}

impl MetricsRegistry {
    /// Creates an empty registry with trace capture disabled.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Enables or disables storage of [`TraceEvent`]s.
    pub fn set_trace_capture(&self, on: bool) {
        self.capture_traces.store(on, Ordering::Relaxed);
    }

    /// Whether trace events are currently being stored.
    pub fn trace_capture(&self) -> bool {
        self.capture_traces.load(Ordering::Relaxed)
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        read_cell(&self.shards[shard_index(scope)].counters, scope, name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Current value of a gauge (0 when never touched).
    pub fn gauge(&self, scope: &str, name: &str) -> u64 {
        read_cell(&self.shards[shard_index(scope)].gauges, scope, name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Snapshot of a single histogram, if it exists.
    pub fn histogram(&self, scope: &str, name: &str) -> Option<HistogramSnapshot> {
        read_cell(&self.shards[shard_index(scope)].histograms, scope, name).map(|h| h.snapshot())
    }

    /// Removes and returns all captured trace events.
    pub fn take_traces(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.traces.lock().expect("trace lock poisoned"))
    }

    /// Point-in-time copy of every metric, with deterministic
    /// (lexicographic) ordering for reports and tests.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            for (scope, inner) in shard.counters.read().expect("lock poisoned").iter() {
                let out = snap.counters.entry(scope.clone()).or_default();
                for (name, c) in inner {
                    out.insert(name.to_string(), c.load(Ordering::Relaxed));
                }
            }
            for (scope, inner) in shard.gauges.read().expect("lock poisoned").iter() {
                let out = snap.gauges.entry(scope.clone()).or_default();
                for (name, c) in inner {
                    out.insert(name.to_string(), c.load(Ordering::Relaxed));
                }
            }
            for (scope, inner) in shard.histograms.read().expect("lock poisoned").iter() {
                let out = snap.histograms.entry(scope.clone()).or_default();
                for (name, h) in inner {
                    out.insert(name.to_string(), h.snapshot());
                }
            }
        }
        snap
    }
}

impl Recorder for MetricsRegistry {
    fn counter_add(&self, scope: &str, name: &'static str, delta: u64) {
        cell(&self.shards[shard_index(scope)].counters, scope, name)
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, scope: &str, name: &'static str, value: u64) {
        cell(&self.shards[shard_index(scope)].gauges, scope, name).store(value, Ordering::Relaxed);
    }

    fn observe(&self, scope: &str, name: &'static str, value: u64) {
        cell(&self.shards[shard_index(scope)].histograms, scope, name).observe(value);
    }

    fn trace(&self, event: TraceEvent) {
        if self.capture_traces.load(Ordering::Relaxed) {
            self.traces.lock().expect("trace lock poisoned").push(event);
        }
    }

    fn snapshot_metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.snapshot())
    }
}

/// Deterministically ordered copy of a [`MetricsRegistry`].
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// scope → counter name → value.
    pub counters: BTreeMap<String, BTreeMap<String, u64>>,
    /// scope → gauge name → value.
    pub gauges: BTreeMap<String, BTreeMap<String, u64>>,
    /// scope → histogram name → snapshot.
    pub histograms: BTreeMap<String, BTreeMap<String, HistogramSnapshot>>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when absent.
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .get(scope)
            .and_then(|m| m.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of one counter across every scope.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.values().filter_map(|m| m.get(name)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = MetricsRegistry::new();
        r.counter_add("atomic", "msgs_sent", 3);
        r.counter_add("atomic", "msgs_sent", 2);
        r.counter_add("vcb", "msgs_sent", 1);
        assert_eq!(r.counter("atomic", "msgs_sent"), 5);
        assert_eq!(r.counter("missing", "msgs_sent"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("atomic", "msgs_sent"), 5);
        assert_eq!(snap.counter_total("msgs_sent"), 6);
        // BTreeMap ordering is deterministic.
        let scopes: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(scopes, vec!["atomic".to_string(), "vcb".to_string()]);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.gauge_set("atomic", "epoch", 1);
        r.gauge_set("atomic", "epoch", 7);
        assert_eq!(r.gauge("atomic", "epoch"), 7);
        assert_eq!(r.snapshot().gauges["atomic"]["epoch"], 7);
    }

    #[test]
    fn histograms_record_through_recorder() {
        let r = MetricsRegistry::new();
        r.observe("atomic", "batch_size", 4);
        r.observe("atomic", "batch_size", 9);
        let h = r.histogram("atomic", "batch_size").expect("exists");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 13);
        assert!(r.histogram("atomic", "missing").is_none());
    }

    #[test]
    fn traces_only_kept_when_capture_enabled() {
        let r = MetricsRegistry::new();
        r.trace(TraceEvent::new(0, "a", "rb"));
        assert!(r.take_traces().is_empty());
        r.set_trace_capture(true);
        r.trace(TraceEvent::new(1, "a", "rb"));
        let traces = r.take_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].party, 1);
        assert!(r.take_traces().is_empty(), "take drains the buffer");
    }

    #[test]
    fn snapshot_ordering_is_deterministic_across_shards() {
        // Scopes land on different shards (FNV over the scope), and the
        // underlying maps are HashMaps — but a snapshot must list every
        // scope and metric in lexicographic order regardless of which
        // shard holds it or in what order metrics were first touched.
        let scopes = ["atomic", "vcb", "sbc", "abba", "link", "server", "z9", "a0"];
        let forward = MetricsRegistry::new();
        for s in scopes {
            forward.counter_add(s, "msgs_sent", 1);
            forward.observe(s, "delivery_latency_us", 10);
        }
        let backward = MetricsRegistry::new();
        for s in scopes.iter().rev() {
            backward.observe(s, "delivery_latency_us", 10);
            backward.counter_add(s, "msgs_sent", 1);
        }
        let fs = forward.snapshot();
        let bs = backward.snapshot();
        let f_order: Vec<_> = fs.counters.keys().cloned().collect();
        let b_order: Vec<_> = bs.counters.keys().cloned().collect();
        assert_eq!(f_order, b_order);
        let mut sorted = f_order.clone();
        sorted.sort();
        assert_eq!(f_order, sorted, "scopes come out lexicographically");
        assert_eq!(
            fs.histograms.keys().collect::<Vec<_>>(),
            bs.histograms.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn snapshot_metrics_exposes_registry_through_recorder_trait() {
        let r: Arc<dyn Recorder> = Arc::new(MetricsRegistry::new());
        r.counter_add("atomic", "msgs_sent", 3);
        let snap = r.snapshot_metrics().expect("registry snapshots");
        assert_eq!(snap.counter("atomic", "msgs_sent"), 3);
        assert!(crate::NoopRecorder.snapshot_metrics().is_none());
    }

    #[test]
    fn fanout_feeds_every_sink_and_snapshots_the_first() {
        let own = Arc::new(MetricsRegistry::new());
        let shared = Arc::new(MetricsRegistry::new());
        let fan = crate::FanoutRecorder::new(vec![own.clone(), shared.clone()]);
        assert!(fan.enabled());
        fan.counter_add("atomic", "msgs_sent", 2);
        fan.gauge_set("server", "stalled", 1);
        fan.observe("atomic", "delivery_latency_us", 50);
        assert_eq!(own.counter("atomic", "msgs_sent"), 2);
        assert_eq!(shared.counter("atomic", "msgs_sent"), 2);
        assert_eq!(shared.gauge("server", "stalled"), 1);
        assert!(shared.histogram("atomic", "delivery_latency_us").is_some());
        let snap = fan.snapshot_metrics().expect("fanout snapshots sink 0");
        assert_eq!(snap.counter("atomic", "msgs_sent"), 2);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("shared", "hits", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(r.counter("shared", "hits"), 4000);
    }
}
