//! Structured trace events emitted by protocol state machines.

use std::fmt;

/// One structured record of protocol progress.
///
/// State machines are sans-IO and have no clock, so they emit events
/// with `time_us == 0`; the runtime that drains them stamps the field —
/// the simulator with [`VirtualTime`] microseconds, the threaded runtime
/// with wall-clock microseconds since the run started.
///
/// [`VirtualTime`]: https://en.wikipedia.org/wiki/Discrete-event_simulation
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microsecond timestamp (virtual or wall, depending on runtime).
    pub time_us: u64,
    /// Party on which the event occurred.
    pub party: usize,
    /// Full protocol instance id (e.g. `atomic/ba/4`).
    pub protocol: String,
    /// Protocol family tag (`rb`, `vcb`, `abba`, `vba`, `atomic`, …).
    pub family: &'static str,
    /// Phase within the protocol (`echo`, `ready`, `pre-vote`, …).
    pub phase: &'static str,
    /// Round or epoch number, when the protocol has one.
    pub round: u64,
    /// Payload bytes associated with the event (0 when not meaningful).
    pub bytes: u64,
    /// Causal parent: the `(sender_party, send_seq)` of the network
    /// message whose processing produced this event, when known. The
    /// runtime stamps it at delivery time; locally-originated events
    /// (client sends, timer expiries) have none.
    pub cause: Option<(usize, u64)>,
    /// Microseconds the event's trigger spent queued before processing
    /// began — for a `net:recv` event, the verify-queue wait between
    /// admission and dispatch under the staged pipeline. Zero (and
    /// omitted from JSON) when nothing waited.
    pub wait_us: u64,
}

impl TraceEvent {
    /// Builds an unstamped event; the runtime fills in `time_us`.
    pub fn new(party: usize, protocol: impl Into<String>, family: &'static str) -> Self {
        TraceEvent {
            time_us: 0,
            party,
            protocol: protocol.into(),
            family,
            phase: "",
            round: 0,
            bytes: 0,
            cause: None,
            wait_us: 0,
        }
    }

    /// Sets the phase tag.
    pub fn phase(mut self, phase: &'static str) -> Self {
        self.phase = phase;
        self
    }

    /// Sets the round/epoch number.
    pub fn round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// Sets the associated payload byte count.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets the causal parent — the `(sender_party, send_seq)` origin of
    /// the message that triggered this event.
    pub fn caused_by(mut self, sender: usize, send_seq: u64) -> Self {
        self.cause = Some((sender, send_seq));
        self
    }

    /// Sets the queued-before-processing wait time.
    pub fn waited(mut self, wait_us: u64) -> Self {
        self.wait_us = wait_us;
        self
    }

    /// Renders the event as one JSON object (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"time_us\":{},\"party\":{},\"protocol\":{},\"family\":{},\"phase\":{},\"round\":{},\"bytes\":{}",
            self.time_us,
            self.party,
            json_string(&self.protocol),
            json_string(self.family),
            json_string(self.phase),
            self.round,
            self.bytes,
        );
        if let Some((sender, seq)) = self.cause {
            out.push_str(&format!(",\"cause\":[{sender},{seq}]"));
        }
        if self.wait_us > 0 {
            out.push_str(&format!(",\"wait_us\":{}", self.wait_us));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10} µs] p{} {} {}:{} round={} bytes={}",
            self.time_us,
            self.party,
            self.protocol,
            self.family,
            self.phase,
            self.round,
            self.bytes
        )
    }
}

/// Escapes a string as a JSON string literal — exported so snapshot and
/// dump writers in other crates render strings exactly like the
/// telemetry layer does.
pub fn json_escape(s: &str) -> String {
    json_string(s)
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_fields() {
        let e = TraceEvent::new(2, "atomic/ba/1", "abba")
            .phase("pre-vote")
            .round(3)
            .bytes(64);
        assert_eq!(e.party, 2);
        assert_eq!(e.protocol, "atomic/ba/1");
        assert_eq!(e.family, "abba");
        assert_eq!(e.phase, "pre-vote");
        assert_eq!(e.round, 3);
        assert_eq!(e.bytes, 64);
        assert_eq!(e.time_us, 0);
    }

    #[test]
    fn json_is_well_formed() {
        let e = TraceEvent::new(0, "a\"b", "rb").phase("echo");
        let j = e.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"protocol\":\"a\\\"b\""));
        assert!(j.contains("\"phase\":\"echo\""));
    }

    #[test]
    fn cause_serializes_when_present() {
        let e = TraceEvent::new(1, "rb", "rb").phase("echo");
        assert!(!e.to_json().contains("cause"));
        let e = e.caused_by(3, 42);
        assert_eq!(e.cause, Some((3, 42)));
        assert!(e.to_json().contains("\"cause\":[3,42]"));
    }

    #[test]
    fn wait_us_serializes_only_when_nonzero() {
        let e = TraceEvent::new(0, "net", "net").phase("recv");
        assert!(!e.to_json().contains("wait_us"));
        let e = e.waited(137);
        assert_eq!(e.wait_us, 137);
        assert!(e.to_json().contains("\"wait_us\":137"));
    }

    #[test]
    fn json_string_escapes_control_chars() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
