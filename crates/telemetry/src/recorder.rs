//! The `Recorder` sink trait, its no-op default, and a fan-out adapter.

use std::sync::Arc;

use crate::{MetricsSnapshot, TraceEvent};

/// Object-safe sink for protocol telemetry.
///
/// Instrumented code should gate any non-trivial work (string
/// formatting, allocation) behind [`Recorder::enabled`] so a disabled
/// recorder costs a single predictable branch:
///
/// ```
/// # use sintra_telemetry::{NoopRecorder, Recorder};
/// # let recorder: &dyn Recorder = &NoopRecorder;
/// if recorder.enabled() {
///     recorder.counter_add("atomic", "msgs_sent", 1);
/// }
/// ```
pub trait Recorder: Send + Sync {
    /// Whether this recorder actually records anything. Callers may
    /// skip instrumentation entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the counter `name` under `scope` (typically the
    /// root protocol instance id).
    fn counter_add(&self, scope: &str, name: &'static str, delta: u64);

    /// Sets the gauge `name` under `scope` to `value`.
    fn gauge_set(&self, scope: &str, name: &'static str, value: u64);

    /// Records one histogram observation for `name` under `scope`.
    fn observe(&self, scope: &str, name: &'static str, value: u64);

    /// Records a structured trace event (already stamped by the
    /// runtime).
    fn trace(&self, event: TraceEvent);

    /// Point-in-time copy of everything this recorder has accumulated,
    /// when it keeps state that can be snapshotted (a
    /// [`MetricsRegistry`](crate::MetricsRegistry) does; sinks that
    /// forward or drop return `None`). This is what a live scrape
    /// endpoint reads — writers are never paused.
    fn snapshot_metrics(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// Recorder that drops everything; [`Recorder::enabled`] is `false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn counter_add(&self, _scope: &str, _name: &'static str, _delta: u64) {}

    fn gauge_set(&self, _scope: &str, _name: &'static str, _value: u64) {}

    fn observe(&self, _scope: &str, _name: &'static str, _value: u64) {}

    fn trace(&self, _event: TraceEvent) {}
}

/// Forwards every record to each sink in turn, so one instrumented
/// party can feed both its own scrape registry and a shared,
/// test-provided recorder without either knowing about the other.
pub struct FanoutRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Builds a fan-out over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        FanoutRecorder { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn counter_add(&self, scope: &str, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter_add(scope, name, delta);
        }
    }

    fn gauge_set(&self, scope: &str, name: &'static str, value: u64) {
        for s in &self.sinks {
            s.gauge_set(scope, name, value);
        }
    }

    fn observe(&self, scope: &str, name: &'static str, value: u64) {
        for s in &self.sinks {
            s.observe(scope, name, value);
        }
    }

    fn trace(&self, event: TraceEvent) {
        for s in &self.sinks {
            s.trace(event.clone());
        }
    }

    /// The first sink that can snapshot answers — by convention the
    /// party's own registry is sink 0.
    fn snapshot_metrics(&self) -> Option<MetricsSnapshot> {
        self.sinks.iter().find_map(|s| s.snapshot_metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_reports_disabled_and_accepts_calls() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.counter_add("s", "c", 1);
        r.gauge_set("s", "g", 2);
        r.observe("s", "h", 3);
        r.trace(TraceEvent::new(0, "s", "rb"));
    }

    #[test]
    fn trait_is_object_safe() {
        let r: Box<dyn Recorder> = Box::new(NoopRecorder);
        assert!(!r.enabled());
    }
}
