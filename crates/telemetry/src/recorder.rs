//! The `Recorder` sink trait and its no-op default.

use crate::TraceEvent;

/// Object-safe sink for protocol telemetry.
///
/// Instrumented code should gate any non-trivial work (string
/// formatting, allocation) behind [`Recorder::enabled`] so a disabled
/// recorder costs a single predictable branch:
///
/// ```
/// # use sintra_telemetry::{NoopRecorder, Recorder};
/// # let recorder: &dyn Recorder = &NoopRecorder;
/// if recorder.enabled() {
///     recorder.counter_add("atomic", "msgs_sent", 1);
/// }
/// ```
pub trait Recorder: Send + Sync {
    /// Whether this recorder actually records anything. Callers may
    /// skip instrumentation entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the counter `name` under `scope` (typically the
    /// root protocol instance id).
    fn counter_add(&self, scope: &str, name: &'static str, delta: u64);

    /// Sets the gauge `name` under `scope` to `value`.
    fn gauge_set(&self, scope: &str, name: &'static str, value: u64);

    /// Records one histogram observation for `name` under `scope`.
    fn observe(&self, scope: &str, name: &'static str, value: u64);

    /// Records a structured trace event (already stamped by the
    /// runtime).
    fn trace(&self, event: TraceEvent);
}

/// Recorder that drops everything; [`Recorder::enabled`] is `false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn counter_add(&self, _scope: &str, _name: &'static str, _delta: u64) {}

    fn gauge_set(&self, _scope: &str, _name: &'static str, _value: u64) {}

    fn observe(&self, _scope: &str, _name: &'static str, _value: u64) {}

    fn trace(&self, _event: TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_reports_disabled_and_accepts_calls() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.counter_add("s", "c", 1);
        r.gauge_set("s", "g", 2);
        r.observe("s", "h", 3);
        r.trace(TraceEvent::new(0, "s", "rb"));
    }

    #[test]
    fn trait_is_object_safe() {
        let r: Box<dyn Recorder> = Box::new(NoopRecorder);
        assert!(!r.enabled());
    }
}
