//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! the subset of semantics the SINTRA threaded runtime relies on:
//! unbounded MPMC queues, cloneable endpoints on both sides, blocking
//! `recv`, `recv_timeout`, non-blocking `try_recv`, and disconnect
//! detection when either side fully drops. Implemented over
//! `Mutex<VecDeque>` + `Condvar`; throughput is a few million messages/s,
//! plenty for the in-process runtime.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe the disconnect.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = guard;
            }
        }

        /// Number of messages currently queued (a point-in-time reading;
        /// mirrors `crossbeam_channel::Receiver::len`).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            if let Some(v) = queue.pop_front() {
                Ok(v)
            } else if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.is_empty());
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert_eq!(tx2.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clone_endpoints_share_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(7).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
