//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest that the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`ProptestConfig`], [`any`], range and regex-string strategies,
//! `prop::collection::vec`, `prop::option::of`, tuple strategies,
//! `prop_map`, and [`prop_oneof!`].
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: each test runs `cases` deterministic pseudo-random
//! samples (seeded from the test name, so runs are reproducible) and
//! fails with a plain panic showing the offending values where the
//! assertion message includes them.

#![forbid(unsafe_code)]

use std::rc::Rc;

#[doc(hidden)]
pub use rand as __rand;
use rand::rngs::StdRng;

pub mod strategy;

pub use strategy::{Any, BoxedStrategy, Just, Map, OneOf, Strategy};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Strategy producing any value of `T` (uniform over the type's raw
/// representation).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any::new()
}

#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    // FNV-1a: stable, dependency-free.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Namespaced strategy constructors (mirror of `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, VecStrategy};

        /// Strategy producing `Vec`s of `element` with a length drawn
        /// from `size`.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy::new(element, size.into())
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::OptionOf;

        /// Strategy producing `None` about a quarter of the time and
        /// `Some(inner sample)` otherwise.
        pub fn of<S>(inner: S) -> OptionOf<S> {
            OptionOf::new(inner)
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{Any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

#[doc(hidden)]
pub type TestRng = StdRng;

#[doc(hidden)]
pub fn __boxed_sampler<T, S: Strategy<Value = T> + 'static>(s: S) -> Rc<dyn Fn(&mut StdRng) -> T> {
    Rc::new(move |rng| s.sample(rng))
}

/// Defines property tests. Supports the subset of real proptest syntax
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::__seed_for(stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold. Only valid
/// directly inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Strategy choosing uniformly between the given strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}
