//! Value-generation strategies.

use std::marker::PhantomData;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values (no shrinking in this
/// stand-in).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(crate::__boxed_sampler(self))
    }
}

/// Strategy producing uniformly random values of `T`.
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any(PhantomData)
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy always producing a clone of one value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among strategies (built by [`crate::prop_oneof!`]).
#[derive(Clone)]
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from pre-boxed arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing vectors of another strategy's values.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy producing `Option`s of another strategy's values.
#[derive(Clone)]
pub struct OptionOf<S> {
    inner: S,
}

impl<S> OptionOf<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionOf { inner }
    }
}

impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

// --- Regex-pattern string strategies -----------------------------------

/// Node of the mini regex AST used by the string strategy.
#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges, e.g. `[a-z0-9_]`.
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence.
    Group(Vec<Vec<(Node, usize, usize)>>),
}

/// Parses the supported regex subset: literals, escapes, `[...]`
/// classes with ranges, `(...)` groups with `|` alternation, and the
/// quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8).
fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    in_group: bool,
) -> Vec<Vec<(Node, usize, usize)>> {
    let mut alternatives = Vec::new();
    let mut current: Vec<(Node, usize, usize)> = Vec::new();
    while let Some(&c) = chars.peek() {
        match c {
            ')' if in_group => break,
            '|' => {
                chars.next();
                alternatives.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        chars.next();
        let node = match c {
            '(' => {
                let alts = parse_seq(chars, true);
                assert_eq!(chars.next(), Some(')'), "unclosed group in pattern");
                Node::Group(alts)
            }
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().expect("unclosed class in pattern");
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("unclosed class range");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern");
                Node::Class(ranges)
            }
            '\\' => Node::Literal(chars.next().expect("dangling escape")),
            other => Node::Literal(other),
        };
        let (min, max) = parse_quantifier(chars);
        current.push((node, min, max));
    }
    alternatives.push(current);
    alternatives
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('{') => {
            chars.next();
            let mut digits = String::new();
            let mut min = None;
            loop {
                match chars.next().expect("unclosed quantifier") {
                    '}' => break,
                    ',' => min = Some(digits.split_off(0).parse().expect("bad quantifier")),
                    d => digits.push(d),
                }
            }
            let last: usize = digits.parse().expect("bad quantifier");
            match min {
                Some(m) => (m, last),
                None => (last, last),
            }
        }
        _ => (1, 1),
    }
}

fn gen_node(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            out.push(char::from_u32(rng.gen_range(lo as u32..=hi as u32)).expect("valid range"));
        }
        Node::Group(alts) => {
            let alt = &alts[rng.gen_range(0..alts.len())];
            gen_seq(alt, rng, out);
        }
    }
}

fn gen_seq(seq: &[(Node, usize, usize)], rng: &mut StdRng, out: &mut String) {
    for (node, min, max) in seq {
        let reps = rng.gen_range(*min..=*max);
        for _ in 0..reps {
            gen_node(node, rng, out);
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let mut chars = self.chars().peekable();
        let alts = parse_seq(&mut chars, false);
        assert!(chars.next().is_none(), "trailing tokens in pattern");
        let mut out = String::new();
        let alt = &alts[rng.gen_range(0..alts.len())];
        gen_seq(alt, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn regex_strategy_respects_structure() {
        let strat = "[a-z]{1,12}(/[a-z0-9]{1,6}){0,3}";
        let mut rng = rng();
        for _ in 0..200 {
            let s = strat.sample(&mut rng);
            let segments: Vec<&str> = s.split('/').collect();
            assert!(!segments.is_empty() && segments.len() <= 4, "{s:?}");
            assert!(segments[0].len() <= 12 && !segments[0].is_empty());
            assert!(segments[0].chars().all(|c| c.is_ascii_lowercase()));
            for seg in &segments[1..] {
                assert!(!seg.is_empty() && seg.len() <= 6, "{s:?}");
                assert!(seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            }
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strat = crate::prop::collection::vec(crate::any::<u8>(), 2..5);
        let mut rng = rng();
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = OneOf::new(vec![
            Just(1u32).boxed(),
            Just(2u32).boxed(),
            Just(3u32).boxed(),
        ]);
        let mut rng = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn option_of_produces_both() {
        let strat = crate::prop::option::of(0u32..10);
        let mut rng = rng();
        let samples: Vec<Option<u32>> = (0..100).map(|_| strat.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0u32..4, crate::any::<bool>()).prop_map(|(a, b)| (a * 2, b));
        let mut rng = rng();
        for _ in 0..50 {
            let (a, _) = strat.sample(&mut rng);
            assert!(a % 2 == 0 && a < 8);
        }
    }
}
