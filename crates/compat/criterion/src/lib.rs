//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface the workspace uses —
//! [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`/`sample_size`, [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! adaptive timing loop instead of criterion's full statistical
//! machinery. Each benchmark is warmed up, the iteration count is scaled
//! until one sample takes ≥ 5 ms, and the median/min/max over the sample
//! set is printed in a criterion-like format.
//!
//! Two environment variables tailor runs for CI smoke jobs:
//!
//! * `SINTRA_BENCH_QUICK=1` — fewer samples and a shorter calibration
//!   target, trading precision for wall-clock time;
//! * `SINTRA_BENCH_JSON=<path>` — additionally write all results as a
//!   JSON array of `{id, median_ns, min_ns, max_ns}` objects when the
//!   benchmark binary finishes (the [`criterion_main!`] macro calls
//!   [`finalize`]).

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether quick mode is enabled (see crate docs).
fn quick_mode() -> bool {
    std::env::var_os("SINTRA_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Completed measurements, collected for the optional JSON report.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

struct BenchResult {
    id: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    /// Iterations per sample, chosen adaptively before sampling.
    iters_per_sample: u64,
    /// Collected per-iteration times (seconds).
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Measures the closure. Call once per `bench_function` body.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count where one
        // sample takes at least ~5 ms (so timer noise stays < 0.1%);
        // quick mode settles for ~1 ms.
        let target = Duration::from_millis(if quick_mode() { 1 } else { 5 });
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            // Scale toward the target with headroom.
            iters = (iters * 4).min(1 << 20);
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(id: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no measurement)");
        return;
    }
    b.samples.sort_by(|a, x| a.partial_cmp(x).expect("no NaN"));
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{id:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi),
    );
    RESULTS.lock().expect("results lock").push(BenchResult {
        id: id.to_string(),
        median_ns: median * 1e9,
        min_ns: lo * 1e9,
        max_ns: hi * 1e9,
    });
}

/// Writes collected results as JSON to `SINTRA_BENCH_JSON` (if set).
/// Called automatically by [`criterion_main!`]; idempotent (the result
/// buffer is drained).
pub fn finalize() {
    let results = std::mem::take(&mut *RESULTS.lock().expect("results lock"));
    let Some(path) = std::env::var_os("SINTRA_BENCH_JSON") else {
        return;
    };
    if results.is_empty() {
        return;
    }
    let mut json = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Benchmark ids are code-controlled; escape the JSON specials anyway.
        let id: String =
            r.id.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if c.is_control() => vec![' '],
                    c => vec![c],
                })
                .collect();
        json.push_str(&format!(
            "  {{\"id\": \"{id}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{sep}\n",
            r.median_ns, r.min_ns, r.max_ns
        ));
    }
    json.push_str("]\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("failed to write {}: {e}", path.to_string_lossy());
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: if quick_mode() { 5 } else { 15 },
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_count, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }
}

/// Identifier of one parameterized benchmark within a group.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(full: String) -> Self {
        BenchmarkId { full }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark (capped in quick
    /// mode so smoke runs stay fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = if quick_mode() { n.min(5) } else { n };
        self.sample_count = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.full),
            self.sample_count,
            &mut f,
        );
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.full),
            self.sample_count,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("x", 42), &2u32, |b, &v| b.iter(|| v * 2));
        g.finish();
    }

    #[test]
    fn results_are_collected_for_reporting() {
        let mut c = Criterion::default();
        c.bench_function("collected", |b| b.iter(|| black_box(3) * 3));
        let results = RESULTS.lock().expect("results lock");
        let r = results
            .iter()
            .find(|r| r.id == "collected")
            .expect("result recorded");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
