//! Sequence-related random operations (mirror of `rand::seq`).

use crate::{uniform_u64, RngCore};

/// Extension methods on slices (stand-in for `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = uniform_u64(rng, self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay in order");
    }

    #[test]
    fn choose_in_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
