//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate re-implements exactly the slice of the `rand` 0.8 API
//! that the workspace uses: [`RngCore`], [`SeedableRng`], the blanket
//! [`Rng`] extension trait (`gen`, `gen_range`, `fill_bytes`),
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically solid, though **not** cryptographically secure. All
//! security-relevant randomness in SINTRA flows through explicitly seeded
//! generators whose quality is a test-fixture concern, not a production
//! trust assumption.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Core random-number generation interface (mirror of `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generator interface (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded via SplitMix64
    /// exactly once per seed byte block.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from raw generator output
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that can be sampled (stand-in for `SampleRange`).
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via Lemire's
/// widening-multiply rejection method.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = [0u8; 33];
        let mut b = [0u8; 33];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
