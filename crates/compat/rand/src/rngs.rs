//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256++.
///
/// API-compatible stand-in for `rand::rngs::StdRng` (which is ChaCha12
/// upstream); streams differ from upstream but are stable across runs and
/// platforms for a given seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        // xoshiro forbids the all-zero state.
        if s == [0; 4] {
            let mut sm = 0x9E37_79B9_7F4A_7C15u64;
            for slot in s.iter_mut() {
                *slot = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.step().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0, "all-zero state must be remapped");
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        b[31] = 1;
        let x = StdRng::from_seed(a).next_u64();
        let y = StdRng::from_seed(b).next_u64();
        assert_ne!(x, y);
        a[31] = 1;
        assert_eq!(StdRng::from_seed(a).next_u64(), y);
    }
}
