//! `sintra-lint`: a protocol-safety static analyzer for the workspace.
//!
//! The Rust compiler enforces memory safety; it knows nothing about the
//! obligations a Byzantine-fault-tolerant replica carries — that replicas
//! must be deterministic, that `n`/`t` threshold arithmetic must have one
//! definition, that a violated invariant must dump evidence before dying,
//! and that wire bytes are frozen forever. This crate checks those
//! obligations at the token level, with no dependencies (the build
//! environment has no crates.io access, and the checker for a
//! supply-chain-sensitive codebase should itself have no supply chain).
//!
//! Findings can be suppressed per line with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory, and a
//! directive with a missing reason or unknown rule is itself a finding.
//! The CLI (`cargo run -p sintra-lint`) walks `crates/*/src`, subtracts a
//! committed baseline, and exits nonzero on anything new.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ir;
pub mod lexer;
pub mod obligations;
pub mod parse;
pub mod rules;
pub mod schema;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use lexer::Comment;
use rules::RawFinding;

/// A supporting evidence location cited by a cross-file finding.
#[derive(Debug, Clone)]
pub struct Related {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What this location shows.
    pub note: String,
}

/// One rule violation in one file.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (one of [`rules::RULES`] or
    /// [`rules::LINT_DIRECTIVE`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable human-readable description.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` directive covers this finding.
    pub suppressed: Option<String>,
    /// Evidence in other locations (cross-file rules only). Suppression
    /// applies at the primary `path:line`, never at a related site.
    pub related: Vec<Related>,
}

impl Finding {
    /// The line-independent identity used for baseline matching, so a
    /// baselined finding does not reopen when unrelated edits shift it.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, self.message)
    }
}

/// A parsed `lint:allow` directive.
#[derive(Debug)]
struct Directive {
    rule: &'static str,
    line: u32,
    reason: String,
}

/// Parses `lint:allow(rule): reason` directives out of comments.
///
/// Malformed directives (unknown rule, missing reason) become findings of
/// the pseudo-rule [`rules::LINT_DIRECTIVE`], which cannot be suppressed:
/// a suppression without a recorded justification is exactly the audit
/// hole the directive syntax exists to close.
fn parse_directives(comments: &[Comment]) -> (Vec<Directive>, Vec<RawFinding>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        // A directive must *start* the comment — prose that merely
        // mentions the syntax (like this crate's own docs) is not one.
        let Some(rest) = c.text.trim_start().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed.push(RawFinding {
                rule: rules::LINT_DIRECTIVE,
                line: c.line,
                message: "malformed lint:allow directive: missing `)`".to_string(),
            });
            continue;
        };
        let rule_name = rest[..close].trim();
        let Some(rule) = rules::RULES.iter().find(|r| **r == rule_name).copied() else {
            malformed.push(RawFinding {
                rule: rules::LINT_DIRECTIVE,
                line: c.line,
                message: format!(
                    "lint:allow names unknown rule `{rule_name}` (known: {})",
                    rules::RULES.join(", ")
                ),
            });
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            malformed.push(RawFinding {
                rule: rules::LINT_DIRECTIVE,
                line: c.line,
                message: format!(
                    "lint:allow({rule_name}) has no reason: write `lint:allow({rule_name}): <why this is sound>`"
                ),
            });
            continue;
        }
        directives.push(Directive {
            rule,
            line: c.line,
            reason: reason.to_string(),
        });
    }
    (directives, malformed)
}

/// Analyzes one file's source text under its workspace-relative path.
///
/// The path selects which rules apply (e.g. determinism only inside
/// `crates/core/src/`), so tests can feed fixture text through any
/// virtual path they like.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let norm = path.replace('\\', "/");
    let lexed = lexer::lex(src);
    let raw = rules::run_rules(&norm, &lexed);
    let (directives, malformed) = parse_directives(&lexed.comments);

    // A directive covers findings on its own line (trailing comment) and
    // on the next line that has code (comment-above style).
    let mut covered: Vec<(&'static str, u32, &str)> = Vec::new();
    for d in &directives {
        covered.push((d.rule, d.line, &d.reason));
        if let Some(next) = lexed.tokens.iter().map(|t| t.line).find(|l| *l > d.line) {
            covered.push((d.rule, next, &d.reason));
        }
    }

    let mut out: Vec<Finding> = raw
        .into_iter()
        .map(|f| {
            let suppressed = covered
                .iter()
                .find(|(r, l, _)| *r == f.rule && *l == f.line)
                .map(|(_, _, reason)| reason.to_string());
            Finding {
                rule: f.rule,
                path: norm.clone(),
                line: f.line,
                message: f.message,
                suppressed,
                related: Vec::new(),
            }
        })
        .collect();
    out.extend(malformed.into_iter().map(|f| Finding {
        rule: f.rule,
        path: norm.clone(),
        line: f.line,
        message: f.message,
        suppressed: None,
        related: Vec::new(),
    }));
    out.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out
}

/// Analyzes a set of files together: every per-file rule plus the
/// cross-file rule families (`verify-before-mutate`, `wire-schema`) that
/// need the whole workspace IR.
///
/// `golden` is the committed `WIRE_SCHEMA.json` text, when drift against
/// it should be checked (pass `None` in fixture tests that exercise only
/// the extraction itself).
///
/// Cross-file findings carry [`Related`] evidence locations; suppression
/// applies at the finding's *primary* location — a `lint:allow` on the
/// handler match arm suppresses a verify-before-mutate finding even when
/// the mutation evidence lives in another file.
pub fn analyze_sources(files: &[(String, String)], golden: Option<&str>) -> Vec<Finding> {
    let normed: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.replace('\\', "/"), s.clone()))
        .collect();
    let workspace = ir::WorkspaceIr::build(&normed);

    let mut out = Vec::new();
    // path → directive coverage (rule, line, reason), for cross findings.
    let mut coverage: BTreeMap<String, Vec<(&'static str, u32, String)>> = BTreeMap::new();
    for file in &workspace.files {
        let (directives, malformed) = parse_directives(&file.lexed.comments);
        let mut covered: Vec<(&'static str, u32, String)> = Vec::new();
        for d in &directives {
            covered.push((d.rule, d.line, d.reason.clone()));
            if let Some(next) = file
                .lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|l| *l > d.line)
            {
                covered.push((d.rule, next, d.reason.clone()));
            }
        }
        for f in rules::run_rules(&file.path, &file.lexed) {
            let suppressed = covered
                .iter()
                .find(|(r, l, _)| *r == f.rule && *l == f.line)
                .map(|(_, _, reason)| reason.clone());
            out.push(Finding {
                rule: f.rule,
                path: file.path.clone(),
                line: f.line,
                message: f.message,
                suppressed,
                related: Vec::new(),
            });
        }
        for f in malformed {
            out.push(Finding {
                rule: f.rule,
                path: file.path.clone(),
                line: f.line,
                message: f.message,
                suppressed: None,
                related: Vec::new(),
            });
        }
        coverage.insert(file.path.clone(), covered);
    }

    let mut cross = obligations::check(&workspace);
    let (schema_json, schema_findings) = schema::extract(&workspace);
    cross.extend(schema_findings);
    if let Some(golden) = golden {
        cross.extend(schema::golden_findings(&workspace, &schema_json, golden));
    }
    for c in cross {
        let suppressed = coverage.get(&c.path).and_then(|cov| {
            cov.iter()
                .find(|(r, l, _)| *r == c.rule && *l == c.line)
                .map(|(_, _, reason)| reason.clone())
        });
        out.push(Finding {
            rule: c.rule,
            path: c.path,
            line: c.line,
            message: c.message,
            suppressed,
            related: c
                .related
                .into_iter()
                .map(|r| Related {
                    path: r.path,
                    line: r.line,
                    note: r.note,
                })
                .collect(),
        });
    }

    out.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    out
}

/// Extracts the wire schema from a set of files (no findings, no golden
/// comparison) — the `--write-wire-schema` path.
pub fn extract_wire_schema(files: &[(String, String)]) -> String {
    let normed: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.replace('\\', "/"), s.clone()))
        .collect();
    let workspace = ir::WorkspaceIr::build(&normed);
    schema::extract(&workspace).0
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads every `crates/*/src/**/*.rs` file under a workspace root into
/// `(workspace-relative path, source)` pairs, sorted by path.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if !rel.contains("/src/") {
            continue;
        }
        out.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(out)
}

/// Analyzes every `crates/*/src/**/*.rs` file under a workspace root,
/// including the cross-file rules and the `WIRE_SCHEMA.json` golden diff
/// (a missing golden reads as empty and therefore as drift).
///
/// Files are visited in sorted path order so output (and the JSON report)
/// is deterministic — the analyzer holds itself to the rule it enforces.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = collect_workspace_files(root)?;
    let golden = std::fs::read_to_string(root.join("WIRE_SCHEMA.json")).unwrap_or_default();
    Ok(analyze_sources(&files, Some(&golden)))
}

/// Parses a baseline file: a JSON array of finding-key strings.
///
/// # Errors
///
/// Returns a description of the first syntax problem.
pub fn parse_baseline(text: &str) -> Result<BTreeSet<String>, String> {
    let cs: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < cs.len() && cs[*i].is_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if cs.get(i) != Some(&'[') {
        return Err("baseline must be a JSON array of strings".to_string());
    }
    i += 1;
    let mut set = BTreeSet::new();
    loop {
        skip_ws(&mut i);
        match cs.get(i) {
            Some(']') => return Ok(set),
            Some('"') => {
                i += 1;
                let mut s = String::new();
                loop {
                    match cs.get(i) {
                        None => return Err("unterminated string in baseline".to_string()),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            i += 1;
                            match cs.get(i) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('r') => s.push('\r'),
                                Some(c @ ('"' | '\\' | '/')) => s.push(*c),
                                other => {
                                    return Err(format!("unsupported escape {other:?} in baseline"))
                                }
                            }
                            i += 1;
                        }
                        Some(c) => {
                            s.push(*c);
                            i += 1;
                        }
                    }
                }
                set.insert(s);
                skip_ws(&mut i);
                match cs.get(i) {
                    Some(',') => i += 1,
                    Some(']') => return Ok(set),
                    other => return Err(format!("expected `,` or `]`, got {other:?}")),
                }
            }
            other => return Err(format!("expected string or `]`, got {other:?}")),
        }
    }
}

/// Escapes a string for embedding in JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Status of a finding after suppression and baseline processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Unsuppressed, not baselined: fails the build.
    Open,
    /// Covered by a `lint:allow` directive with a reason.
    Suppressed,
    /// Present in the committed baseline.
    Baselined,
}

/// Classifies a finding against the baseline.
pub fn status_of(f: &Finding, baseline: &BTreeSet<String>) -> Status {
    if f.suppressed.is_some() {
        Status::Suppressed
    } else if baseline.contains(&f.key()) {
        Status::Baselined
    } else {
        Status::Open
    }
}

/// Renders the `sintra-lint-v2` JSON report.
///
/// v2 extends v1 with a `related` array per finding: the evidence
/// locations of cross-file rules (e.g. the mutation site and the wire
/// body declaration behind a `verify-before-mutate` hit). Findings from
/// per-file rules carry an empty array.
pub fn render_json(findings: &[Finding], baseline: &BTreeSet<String>) -> String {
    let mut open = 0usize;
    let mut suppressed = 0usize;
    let mut baselined = 0usize;
    let mut body = String::new();
    for (i, f) in findings.iter().enumerate() {
        let status = status_of(f, baseline);
        let status_str = match status {
            Status::Open => {
                open += 1;
                "open"
            }
            Status::Suppressed => {
                suppressed += 1;
                "suppressed"
            }
            Status::Baselined => {
                baselined += 1;
                "baselined"
            }
        };
        if i > 0 {
            body.push_str(",\n");
        }
        let _ = write!(
            body,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"status\": \"{}\"",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            status_str,
        );
        if let Some(reason) = &f.suppressed {
            let _ = write!(body, ", \"reason\": \"{}\"", json_escape(reason));
        }
        let related: Vec<String> = f
            .related
            .iter()
            .map(|r| {
                format!(
                    "{{\"path\": \"{}\", \"line\": {}, \"note\": \"{}\"}}",
                    json_escape(&r.path),
                    r.line,
                    json_escape(&r.note)
                )
            })
            .collect();
        let _ = write!(body, ", \"related\": [{}]", related.join(", "));
        body.push('}');
    }
    format!(
        "{{\n  \"format\": \"sintra-lint-v2\",\n  \"rules\": [{}],\n  \"summary\": {{\"total\": {}, \"open\": {}, \"suppressed\": {}, \"baselined\": {}}},\n  \"findings\": [\n{}\n  ]\n}}\n",
        rules::RULES
            .iter()
            .map(|r| format!("\"{r}\""))
            .collect::<Vec<_>>()
            .join(", "),
        findings.len(),
        open,
        suppressed,
        baselined,
        body,
    )
}

/// Renders human-readable output: one `path:line: [rule] message` per open
/// finding, then a one-line summary.
pub fn render_human(findings: &[Finding], baseline: &BTreeSet<String>) -> String {
    let mut out = String::new();
    let mut open = 0usize;
    let mut suppressed = 0usize;
    let mut baselined = 0usize;
    for f in findings {
        match status_of(f, baseline) {
            Status::Open => {
                open += 1;
                let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            }
            Status::Suppressed => suppressed += 1,
            Status::Baselined => baselined += 1,
        }
    }
    let _ = writeln!(
        out,
        "sintra-lint: {open} open, {suppressed} suppressed, {baselined} baselined"
    );
    out
}

/// Serializes the keys of all unsuppressed findings as a baseline file.
pub fn render_baseline(findings: &[Finding]) -> String {
    let keys: BTreeSet<String> = findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .map(Finding::key)
        .collect();
    if keys.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    let n = keys.len();
    for (i, k) in keys.iter().enumerate() {
        let _ = write!(out, "  \"{}\"", json_escape(k));
        out.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: &str = "crates/core/src/sample.rs";

    fn open_rules(path: &str, src: &str) -> Vec<&'static str> {
        analyze_source(path, src)
            .into_iter()
            .filter(|f| f.suppressed.is_none())
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn suppression_requires_reason() {
        let with_reason =
            "// lint:allow(determinism): replay-stable, seeded\nuse std::collections::HashMap;\n";
        let findings = analyze_source(CORE, with_reason);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed.is_some());

        let without = "// lint:allow(determinism)\nuse std::collections::HashMap;\n";
        let rules: Vec<_> = open_rules(CORE, without);
        assert!(rules.contains(&rules::DETERMINISM), "{rules:?}");
        assert!(rules.contains(&rules::LINT_DIRECTIVE), "{rules:?}");
    }

    #[test]
    fn unknown_rule_in_directive_is_a_finding() {
        let rules = open_rules(CORE, "// lint:allow(no-such-rule): whatever\nlet x = 1;\n");
        assert_eq!(rules, vec![rules::LINT_DIRECTIVE]);
    }

    #[test]
    fn trailing_directive_covers_its_own_line() {
        let src = "let m: HashMap<u8, u8>; // lint:allow(determinism): fixture\n";
        let findings = analyze_source(CORE, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].suppressed.as_deref(), Some("fixture"));
    }

    #[test]
    fn baseline_roundtrip() {
        let findings = analyze_source(CORE, "use std::collections::HashMap;\n");
        let text = render_baseline(&findings);
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(findings.iter().all(|f| parsed.contains(&f.key())));
        assert_eq!(parse_baseline("[]").unwrap().len(), 0);
        assert!(parse_baseline("{}").is_err());
    }

    #[test]
    fn json_report_is_tagged_and_escaped() {
        let findings = analyze_source(CORE, "use std::collections::HashMap;\n");
        let json = render_json(&findings, &BTreeSet::new());
        assert!(json.contains("\"format\": \"sintra-lint-v2\""));
        assert!(json.contains("\"open\": 1"));
        assert!(json.contains("`HashMap`"));
        assert!(json.contains("\"related\": []"));
    }
}
