//! A minimal token-level lexer for Rust source.
//!
//! The rules in this crate do not need a syntax tree: every property they
//! check is visible in the token stream (an identifier appearing, a tag
//! byte pushed as a literal, an arithmetic operator next to a threshold
//! call). What they *do* need is for comments, string literals, character
//! literals and lifetimes to be classified correctly — otherwise a doc
//! comment mentioning `HashMap` or a test fixture embedded in a string
//! would produce false findings. That classification is exactly what this
//! hand-rolled lexer provides, in the same dependency-free spirit as the
//! JSON parser in `sintra-telemetry`.

/// The classes of token the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `match`, `u32`, ...).
    Ident,
    /// An integer or float literal (value not interpreted).
    Num,
    /// A string, raw string, byte string or char literal (contents dropped).
    Lit,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text (empty for [`TokenKind::Lit`]).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// A comment (line or block) with the line it starts on. Line comments
/// keep their text so `lint:allow` directives can be parsed from them.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes Rust source into tokens and comments.
///
/// The lexer is deliberately forgiving: on input it does not understand
/// it emits a `Punct` token and moves one character forward, so malformed
/// source degrades to noise tokens rather than a panic or an error.
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| -> char { *cs.get(i).unwrap_or(&'\0') };

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == '/' && at(i + 1) == '/' {
            let start = i;
            while i < cs.len() && cs[i] != '\n' {
                i += 1;
            }
            let text: String = cs[start..i].iter().collect();
            let text = text.trim_start_matches('/').trim_start_matches('!').trim();
            out.comments.push(Comment {
                text: text.to_string(),
                line,
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && at(i + 1) == '*' {
            let start_line = line;
            let start = i;
            i += 2;
            let mut depth = 1usize;
            while i < cs.len() && depth > 0 {
                if cs[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if cs[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = cs[start..i].iter().collect();
            out.comments.push(Comment {
                text: text
                    .trim_start_matches('/')
                    .trim_matches(|c| c == '*' || c == '/' || c == ' ')
                    .to_string(),
                line: start_line,
            });
            continue;
        }
        // Raw / byte / C string prefixes: r"..", r#".."#, b"..", br#".."#,
        // b'..', c"..", cr#".."# (and the multi-hash forms r##".."## etc.).
        if c == 'r' || c == 'b' || c == 'c' {
            let mut j = i + 1;
            if (c == 'b' || c == 'c') && at(j) == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while at(j) == '#' {
                hashes += 1;
                j += 1;
            }
            let raw = c == 'r' || at(i + 1) == 'r';
            if at(j) == '"' && (raw || hashes == 0) {
                // String body: for raw strings scan for `"` + hashes; for
                // plain byte strings honor backslash escapes.
                let tok_line = line;
                i = j + 1;
                loop {
                    if i >= cs.len() {
                        break;
                    }
                    if cs[i] == '\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if !raw && cs[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if cs[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && at(i + 1 + k) == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    text: String::new(),
                    line: tok_line,
                    in_test: false,
                });
                continue;
            }
            if c == 'b' && hashes == 0 && at(i + 1) == '\'' {
                // Byte char literal b'x' / b'\n'.
                i += 2;
                if at(i) == '\\' {
                    i += 1;
                }
                while i < cs.len() && cs[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    text: String::new(),
                    line,
                    in_test: false,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if is_ident_start(c) {
            let start = i;
            while i < cs.len() && is_ident_continue(cs[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: cs[start..i].iter().collect(),
                line,
                in_test: false,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < cs.len() && is_ident_continue(cs[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: cs[start..i].iter().collect(),
                line,
                in_test: false,
            });
            continue;
        }
        if c == '"' {
            let tok_line = line;
            i += 1;
            while i < cs.len() && cs[i] != '"' {
                if cs[i] == '\\' {
                    i += 1;
                } else if cs[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            out.tokens.push(Token {
                kind: TokenKind::Lit,
                text: String::new(),
                line: tok_line,
                in_test: false,
            });
            continue;
        }
        if c == '\'' {
            // Disambiguate char literal from lifetime: 'x' closes with a
            // quote right after one character (or an escape); a lifetime
            // is `'` + identifier with no closing quote.
            if at(i + 1) == '\\' {
                i += 2;
                while i < cs.len() && cs[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    text: String::new(),
                    line,
                    in_test: false,
                });
            } else if is_ident_start(at(i + 1)) && at(i + 2) != '\'' {
                let start = i + 1;
                i += 1;
                while i < cs.len() && is_ident_continue(cs[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: cs[start..i].iter().collect(),
                    line,
                    in_test: false,
                });
            } else {
                // 'x' or '(' style char literal.
                i += 2;
                while i < cs.len() && cs[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    text: String::new(),
                    line,
                    in_test: false,
                });
            }
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            in_test: false,
        });
        i += 1;
    }

    mark_test_regions(&mut out.tokens);
    out
}

/// Marks tokens covered by `#[cfg(test)]` or `#[test]` items.
///
/// After either attribute, the region extends to the end of the item it
/// annotates: through the matching close brace of the item's block, or to
/// the terminating semicolon for brace-less items (`#[cfg(test)] use ..;`).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        let is_attr = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && (tokens.get(i + 2).is_some_and(|t| t.is_ident("test"))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct(']'))
                || tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
                    && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
                    && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
                    && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
                    && tokens.get(i + 6).is_some_and(|t| t.is_punct(']')));
        if !is_attr {
            i += 1;
            continue;
        }
        // Find the end of the annotated item.
        let mut j = i;
        let mut end = tokens.len();
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                end = j + 1;
                break;
            }
            if tokens[j].is_punct('{') {
                let mut depth = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                end = (j + 1).min(tokens.len());
                break;
            }
            j += 1;
        }
        for tok in &mut tokens[i..end] {
            tok.in_test = true;
        }
        i = end.max(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw "string""#;
            let c = b"HashMap bytes";
            let d = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lit));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        // `/* /* */ */` must consume through the *outer* terminator: the
        // identifier after the inner `*/` is still comment text, and the
        // first identifier after the outer `*/` is code again.
        let src = "/* outer /* inner */ HashMap */ let live = 1;";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert_eq!(ids, vec!["let", "live"]);

        // Two levels of nesting, spread over lines.
        let src = "/*\n/* a /* b */ c */\nHashMap\n*/\nlet x = 1;";
        let toks = lex(src).tokens;
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(toks[0].text, "let");
        assert_eq!(toks[0].line, 5, "lines inside the comment still count");
    }

    #[test]
    fn multi_hash_raw_strings_terminate_on_their_own_fence() {
        // r##"..."## may contain `"#` without terminating.
        let src = r####"let a = r##"quote "# HashMap "##; let b = 1;"####;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert_eq!(ids, vec!["let", "a", "let", "b"]);

        // br##"..."## gets the same treatment.
        let src = r####"let a = br##"bytes "# HashMap "##;"####;
        assert!(!idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn c_string_literals_are_literals() {
        // c"..." — a C-string literal, not the identifier `c` + a string.
        let lexed = lex(r#"let p = c"HashMap\0";"#);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ids, vec!["let", "p"], "no stray `c` ident: {ids:?}");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lit)
                .count(),
            1
        );

        // cr#"..."# — a raw C-string: inner `"` must not terminate it.
        let src = r##"let p = cr#"embedded " HashMap"#; let q = 1;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert_eq!(ids, vec!["let", "p", "let", "q"]);

        // Identifiers that merely start with c/cr still lex as identifiers.
        let ids = idents("let crate_count = cr_total;");
        assert_eq!(ids, vec!["let", "crate_count", "cr_total"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            fn also_live() {}
        ";
        let toks = lex(src).tokens;
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        assert!(toks.iter().any(|t| t.is_ident("also_live") && !t.in_test));
    }

    #[test]
    fn directive_comments_are_captured() {
        let lexed = lex("// lint:allow(determinism): seeded map\nlet x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.starts_with("lint:allow"));
    }
}
