//! Wire-schema extraction and the `wire-schema` rule.
//!
//! Every `impl Wire for T` in the workspace is walked on both sides:
//! the `encode` body is linearized into *write ops* (tag bytes, raw
//! integers, length prefixes, length-prefixed byte strings, nested
//! encodes) and the `decode` body into *read ops* (reader primitives,
//! nested decodes, tag matches). The two sides are then paired — per
//! variant for enums, positionally for structs — and any asymmetry
//! (missing arm, field-count drift, name or kind mismatch) is a finding:
//! a replica that encodes bytes its peers decode differently has broken
//! the protocol even though `rustc` is perfectly happy.
//!
//! The encode side is also rendered to a deterministic JSON document —
//! the machine-readable schema of the wire format. The committed
//! `WIRE_SCHEMA.json` golden is diffed against it on every lint run, so
//! a wire-breaking change cannot land silently: it must regenerate the
//! golden *and* bump `WIRE_FORMAT_VERSION` in `crates/core/src/wire.rs`
//! in the same change.

use std::collections::BTreeMap;

use crate::ir::{FnId, WorkspaceIr};
use crate::lexer::{Token, TokenKind};
use crate::obligations::CrossFinding;
use crate::rules::{self, RawRelated};

/// Identifiers that are never the field name of a codec operand.
const NAME_NOISE: &[&str] = &[
    "self",
    "buf",
    "if",
    "else",
    "as",
    "match",
    "to_be_bytes",
    "as_bytes",
    "mut",
    "ref",
];

/// Rust integer type names (skipped when hunting for an operand name).
const INT_TYPES: &[&str] = &["u8", "u16", "u32", "u64", "usize", "i32", "i64"];

/// One codec operation, from either side of a `Wire` impl.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// `buf.push(TAG_X)` — a named discriminant byte.
    Tag(String),
    /// `buf.push(<expr>)` — a raw byte write.
    Byte(Option<String>),
    /// `buf.extend_from_slice(..)` — raw bytes, fixed width or array.
    Raw(Option<String>),
    /// `put_bytes(buf, ..)` — a length-prefixed byte string.
    Bytes(Option<String>),
    /// `put_len(buf, ..)` — a bare `u32` length prefix.
    Len,
    /// `x.encode(buf)` — a nested encode, with an optional `as uN` cast.
    Enc {
        /// Operand name, when recoverable.
        name: Option<String>,
        /// Cast width for `(x as u32).encode(..)` style writes.
        cast: Option<String>,
    },
    /// `r.u8()` / `r.u32()` / `r.bytes()` / `r.take_arr()` — a reader
    /// primitive, by method name.
    Prim {
        /// Reader method (`u8`, `u32`, `u64`, `bytes`, `take_arr`, ...).
        kind: String,
        /// Bound name, when recoverable.
        name: Option<String>,
    },
    /// `T::decode(r)` — a nested decode.
    Dec {
        /// The decoded type path, normalized (`Vec<u8>`, `[u8;32]`, ...).
        ty: String,
        /// Destination field name, when recoverable.
        name: Option<String>,
    },
}

impl Op {
    /// Stable rendering, used both in the JSON schema and in messages.
    fn render(&self) -> String {
        let name = |n: &Option<String>| n.as_deref().map(|n| format!("={n}")).unwrap_or_default();
        match self {
            Op::Tag(c) => format!("tag({c})"),
            Op::Byte(n) => format!("byte{}", name(n)),
            Op::Raw(n) => format!("raw{}", name(n)),
            Op::Bytes(n) => format!("bytes{}", name(n)),
            Op::Len => "len".to_string(),
            Op::Enc { name: n, cast } => match cast {
                Some(c) => format!("enc({c}){}", name(n)),
                None => format!("enc{}", name(n)),
            },
            Op::Prim { kind, name: n } => format!("read({kind}){}", name(n)),
            Op::Dec { ty, name: n } => format!("dec({ty}){}", name(n)),
        }
    }

    fn name(&self) -> Option<&str> {
        match self {
            Op::Tag(_) | Op::Len => None,
            Op::Byte(n) | Op::Raw(n) | Op::Bytes(n) => n.as_deref(),
            Op::Enc { name, .. } | Op::Prim { name, .. } | Op::Dec { name, .. } => name.as_deref(),
        }
    }
}

/// One variant arm of an enum codec (or the single arm of a struct).
#[derive(Debug, Default)]
struct ArmOps {
    /// Variant name on the encode side (empty for struct/positional).
    variant: String,
    /// Tag constant pairing encode and decode arms.
    tag: Option<String>,
    /// 1-based line of the arm (encode side).
    line: u32,
    ops: Vec<Op>,
}

/// One side (encode or decode) of a `Wire` impl, linearized.
#[derive(Debug, Default)]
struct SideOps {
    /// Ops outside any variant dispatch, in order.
    prefix: Vec<Op>,
    /// Variant arms, in source order. Empty when there is no dispatch.
    arms: Vec<ArmOps>,
}

/// A `Wire` implementation with both sides extracted.
struct WireImpl {
    ty: String,
    file: usize,
    enc_line: u32,
    dec_line: u32,
    enc: SideOps,
    dec: SideOps,
}

fn skip_group(toks: &[Token], i: usize) -> usize {
    let Some(open) = toks.get(i) else { return i };
    let (o, c) = match () {
        _ if open.is_punct('(') => ('(', ')'),
        _ if open.is_punct('{') => ('{', '}'),
        _ if open.is_punct('[') => ('[', ']'),
        _ => return i,
    };
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(o) {
            depth += 1;
        } else if toks[j].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// The likeliest operand name inside a paren group: the first identifier
/// that is not noise, not an integer type, and not itself a call head.
fn group_name(toks: &[Token], open: usize, close: usize) -> Option<String> {
    let mut last_num: Option<String> = None;
    for j in open + 1..close {
        let t = &toks[j];
        if t.kind == TokenKind::Num {
            last_num = Some(t.text.clone());
            continue;
        }
        if t.kind != TokenKind::Ident
            || NAME_NOISE.contains(&t.text.as_str())
            || INT_TYPES.contains(&t.text.as_str())
            || toks.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        return Some(t.text.clone());
    }
    // `(self.0 as u32)` — tuple-field writes name by index.
    last_num
}

fn normalize_name(n: Option<String>) -> Option<String> {
    n.filter(|n| n != "self")
}

/// The name bound to a decode read: `field: r.u32()?` in a struct literal
/// or `let field = r.u32()?`. `at` is the first token of the read expr.
fn decode_name(toks: &[Token], at: usize) -> Option<String> {
    if at >= 2
        && toks[at - 1].is_punct(':')
        && !toks
            .get(at.wrapping_sub(2))
            .is_some_and(|t| t.is_punct(':'))
        && toks[at - 2].kind == TokenKind::Ident
    {
        return Some(toks[at - 2].text.clone());
    }
    if at >= 2 && toks[at - 1].is_punct('=') && !toks[at - 1].is_punct('<') {
        let mut j = at - 2;
        if toks[j].kind == TokenKind::Ident && toks[j].is_ident("mut") && j > 0 {
            j -= 1;
        }
        if toks[j].kind == TokenKind::Ident && !toks[j].is_ident("mut") {
            return Some(toks[j].text.clone());
        }
    }
    None
}

/// Linearizes encode-side ops over a token range (no dispatch handling).
fn encode_ops(toks: &[Token], lo: usize, hi: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut i = lo;
    while i < hi.min(toks.len()) {
        let t = &toks[i];
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if t.kind == TokenKind::Ident && called {
            let close = skip_group(toks, i + 1).saturating_sub(1);
            match t.text.as_str() {
                "push" if prev_dot && i >= 2 && toks[i - 2].is_ident("buf") => {
                    // A single uppercase identifier is a named tag.
                    let single = close == i + 3
                        && toks[i + 2].kind == TokenKind::Ident
                        && toks[i + 2]
                            .text
                            .chars()
                            .next()
                            .is_some_and(char::is_uppercase);
                    if single {
                        ops.push(Op::Tag(toks[i + 2].text.clone()));
                    } else {
                        ops.push(Op::Byte(normalize_name(group_name(toks, i + 1, close))));
                    }
                    i = close + 1;
                    continue;
                }
                "extend_from_slice" if prev_dot && i >= 2 && toks[i - 2].is_ident("buf") => {
                    // `buf.extend_from_slice(&(x.len() as u32).to_be_bytes())`
                    // is the hand-rolled form of `put_len` — a `.len()`
                    // call inside the operand marks it as a length prefix,
                    // not payload bytes.
                    let is_len = (i + 1..close).any(|k| {
                        toks[k].is_ident("len") && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                    });
                    if is_len {
                        ops.push(Op::Len);
                    } else {
                        ops.push(Op::Raw(normalize_name(group_name(toks, i + 1, close))));
                    }
                    i = close + 1;
                    continue;
                }
                "put_bytes" if !prev_dot => {
                    ops.push(Op::Bytes(normalize_name(group_name(toks, i + 1, close))));
                    i = close + 1;
                    continue;
                }
                "put_len" if !prev_dot => {
                    ops.push(Op::Len);
                    i = close + 1;
                    continue;
                }
                "encode" if prev_dot => {
                    // Operand is whatever precedes the `.`: an identifier,
                    // a tuple index, or a parenthesized (cast) expression.
                    let before = i.checked_sub(2).map(|p| &toks[p]);
                    let (name, cast) = match before {
                        Some(b) if b.kind == TokenKind::Ident || b.kind == TokenKind::Num => {
                            (Some(b.text.clone()), None)
                        }
                        Some(b) if b.is_punct(')') => {
                            // Walk back to the matching `(`.
                            let mut depth = 0isize;
                            let mut j = i - 2;
                            loop {
                                if toks[j].is_punct(')') {
                                    depth += 1;
                                } else if toks[j].is_punct('(') {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                if j == 0 {
                                    break;
                                }
                                j -= 1;
                            }
                            let cast = (j..i - 2)
                                .find(|&k| toks[k].is_ident("as"))
                                .and_then(|k| toks.get(k + 1))
                                .filter(|t| INT_TYPES.contains(&t.text.as_str()))
                                .map(|t| t.text.clone());
                            (group_name(toks, j, i - 2), cast)
                        }
                        _ => (None, None),
                    };
                    ops.push(Op::Enc {
                        name: normalize_name(name),
                        cast,
                    });
                    i = close + 1;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
    ops
}

/// Whether the `match` starting at `at` scrutinizes a reader tag byte
/// (`match r.u8()? { ... }`); returns its block-open index if so.
fn tag_match_open(toks: &[Token], at: usize) -> Option<usize> {
    let mut j = at + 1;
    let mut saw_read = false;
    let mut budget = 16usize;
    while budget > 0 {
        budget -= 1;
        let t = toks.get(j)?;
        if t.is_punct('{') {
            return saw_read.then_some(j);
        }
        if t.is_ident("u8") && j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].is_ident("r") {
            saw_read = true;
        }
        j += 1;
    }
    None
}

/// Linearizes decode-side ops over a range; tag matches split into arms.
fn decode_side(toks: &[Token], lo: usize, hi: usize) -> SideOps {
    let mut side = SideOps::default();
    let mut i = lo;
    while i < hi.min(toks.len()) {
        let t = &toks[i];
        if t.is_ident("match") {
            if let Some(open) = tag_match_open(toks, i) {
                let end = skip_group(toks, open);
                decode_arms(toks, open + 1, end.saturating_sub(1), &mut side.arms);
                i = end;
                continue;
            }
        }
        if let Some((op, next)) = decode_op(toks, i) {
            side.prefix.push(op);
            i = next;
            continue;
        }
        i += 1;
    }
    side
}

/// One decode read op starting at token `i`, if any.
fn decode_op(toks: &[Token], i: usize) -> Option<(Op, usize)> {
    let t = &toks[i];
    if t.kind != TokenKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    let close = skip_group(toks, i + 1);
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    if prev_dot && i >= 2 && toks[i - 2].is_ident("r") {
        let kind = t.text.as_str();
        if matches!(
            kind,
            "u8" | "u32" | "u64" | "bytes" | "take" | "take_arr" | "take_rest"
        ) {
            let name = decode_name(toks, i - 2);
            return Some((
                Op::Prim {
                    kind: kind.to_string(),
                    name,
                },
                close,
            ));
        }
        return None;
    }
    if t.is_ident("decode") && i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        // Reconstruct the type path backwards: idents, nums, and the
        // puncts a path can contain. A lone `:` (struct-literal field
        // separator) terminates the walk; `::` does not.
        let mut j = i - 2; // index of the second `:` of `::`
        let mut start = j;
        while start > 0 {
            let p = &toks[start - 1];
            let pathish = p.kind == TokenKind::Ident
                || p.kind == TokenKind::Num
                || p.is_punct('<')
                || p.is_punct('>')
                || p.is_punct('[')
                || p.is_punct(']')
                || p.is_punct(';');
            let double_colon = p.is_punct(':')
                && (start >= 2 && toks[start - 2].is_punct(':')
                    || toks.get(start).is_some_and(|t| t.is_punct(':')));
            if pathish || double_colon {
                start -= 1;
            } else {
                break;
            }
        }
        // Drop a trailing `::` that belongs to `::decode` itself.
        j = i - 2;
        while j > start && toks[j - 1].is_punct(':') {
            j -= 1;
        }
        let mut ty: String = toks[start..j].iter().map(|t| t.text.as_str()).collect();
        ty = ty.replace("::<", "<");
        if ty.starts_with('<') && ty.ends_with('>') {
            ty = ty[1..ty.len() - 1].to_string();
        }
        if ty.is_empty() {
            return None;
        }
        let name = decode_name(toks, start);
        return Some((Op::Dec { ty, name }, close));
    }
    None
}

/// Splits a tag-match block body into keyed arms with their ops.
fn decode_arms(toks: &[Token], lo: usize, hi: usize, arms: &mut Vec<ArmOps>) {
    let mut i = lo;
    while i < hi {
        // Pattern head.
        let head = &toks[i];
        let keyed = head.kind == TokenKind::Ident
            && head.text.chars().next().is_some_and(char::is_uppercase);
        // Scan to `=>`.
        let mut j = i;
        let mut found = false;
        while j < hi {
            if toks[j].is_punct('=')
                && toks.get(j + 1).is_some_and(|t| t.is_punct('>'))
                && !toks.get(j.wrapping_sub(1)).is_some_and(|t| {
                    t.is_punct('=') || t.is_punct('<') || t.is_punct('>') || t.is_punct('!')
                })
            {
                found = true;
                break;
            }
            j += 1;
        }
        if !found {
            break;
        }
        // Arm body: block, or expression up to a top-level `,`.
        let mut k = j + 2;
        let body_lo = k;
        let body_hi;
        if toks.get(k).is_some_and(|t| t.is_punct('{')) {
            body_hi = skip_group(toks, k);
            k = body_hi;
        } else {
            let mut depth = 0isize;
            while k < hi {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    break;
                }
                k += 1;
            }
            body_hi = k;
        }
        if keyed {
            let inner = decode_side(toks, body_lo, body_hi);
            let mut ops = inner.prefix;
            // A nested tag match inside an arm (none today) flattens.
            for a in inner.arms {
                ops.extend(a.ops);
            }
            arms.push(ArmOps {
                variant: String::new(),
                tag: Some(head.text.clone()),
                line: head.line,
                ops,
            });
        }
        // Step past the `,` separating arms, if present.
        i = if toks.get(k).is_some_and(|t| t.is_punct(',')) {
            k + 1
        } else {
            k.max(i + 1)
        };
    }
}

/// Linearizes the encode side; a statement-level `match` splits into arms.
fn encode_side(toks: &[Token], lo: usize, hi: usize) -> SideOps {
    let mut side = SideOps::default();
    let mut i = lo;
    while i < hi.min(toks.len()) {
        let t = &toks[i];
        // Statement-level dispatch: `match self {` / `match &self.body {`
        // directly in the fn body (not inside `buf.push(..)` parens).
        if t.is_ident("match")
            && i > 0
            && (toks[i - 1].is_punct('{') || toks[i - 1].is_punct(';') || toks[i - 1].is_punct('}'))
        {
            let Some(open) = (i..hi).find(|&j| toks[j].is_punct('{')) else {
                i += 1;
                continue;
            };
            let end = skip_group(toks, open);
            encode_arms(toks, open + 1, end.saturating_sub(1), &mut side.arms);
            i = end;
            continue;
        }
        // Flush any ops between statements (prefix like SigShare's index).
        let upto = (i..hi.min(toks.len()))
            .find(|&j| {
                toks[j].is_ident("match")
                    && j > 0
                    && (toks[j - 1].is_punct('{')
                        || toks[j - 1].is_punct(';')
                        || toks[j - 1].is_punct('}'))
            })
            .unwrap_or(hi.min(toks.len()));
        side.prefix.extend(encode_ops(toks, i, upto));
        i = upto;
    }
    side
}

/// Splits an encode-side `match` block into variant arms with their ops.
fn encode_arms(toks: &[Token], lo: usize, hi: usize, arms: &mut Vec<ArmOps>) {
    let mut i = lo;
    while i < hi {
        // Pattern: a path like `Body :: CbFinal` (or a bare `None`),
        // optionally followed by a binding group.
        let mut j = i;
        let mut variant: Option<(String, u32)> = None;
        while j < hi {
            let t = &toks[j];
            if t.kind == TokenKind::Ident {
                variant = Some((t.text.clone(), t.line));
                j += 1;
                continue;
            }
            if t.is_punct(':') {
                j += 1;
                continue;
            }
            break;
        }
        if toks
            .get(j)
            .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
        {
            j = skip_group(toks, j);
        }
        // `=>`.
        if !(toks.get(j).is_some_and(|t| t.is_punct('='))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('>')))
        {
            // Not an arm shape we understand; bail out of this block.
            break;
        }
        let mut k = j + 2;
        let body_lo = k;
        let body_hi;
        if toks.get(k).is_some_and(|t| t.is_punct('{')) {
            body_hi = skip_group(toks, k);
            k = body_hi;
        } else {
            let mut depth = 0isize;
            while k < hi {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    break;
                }
                k += 1;
            }
            body_hi = k;
        }
        if let Some((name, line)) = variant {
            let mut ops = encode_ops(toks, body_lo, body_hi);
            let tag = match ops.first() {
                Some(Op::Tag(c)) => {
                    let c = c.clone();
                    ops.remove(0);
                    Some(c)
                }
                _ => None,
            };
            arms.push(ArmOps {
                variant: name,
                tag,
                line,
                ops,
            });
        }
        i = if toks.get(k).is_some_and(|t| t.is_punct(',')) {
            k + 1
        } else {
            k.max(i + 1)
        };
    }
}

/// Collects every `Wire` impl with both sides linearized.
fn collect_impls(ir: &WorkspaceIr) -> (Vec<WireImpl>, Vec<CrossFinding>) {
    let mut findings = Vec::new();
    // (type, file) → (encode fn, decode fn)
    let mut pairs: BTreeMap<(String, usize), (Option<FnId>, Option<FnId>)> = BTreeMap::new();
    for (fi, file) in ir.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if f.trait_name.as_deref() != Some("Wire") || f.in_test {
                continue;
            }
            let Some(ty) = f.self_type.clone() else {
                continue;
            };
            let entry = pairs.entry((ty, fi)).or_default();
            match f.name.as_str() {
                "encode" => entry.0 = Some((fi, gi)),
                "decode" => entry.1 = Some((fi, gi)),
                _ => {}
            }
        }
    }
    let mut impls = Vec::new();
    for ((ty, fi), (enc, dec)) in pairs {
        let (Some(enc), Some(dec)) = (enc, dec) else {
            let present = enc.or(dec).expect("pair has at least one side");
            let f = ir.fn_item(present);
            findings.push(CrossFinding {
                rule: rules::WIRE_SCHEMA,
                path: ir.files[fi].path.clone(),
                line: f.line,
                message: format!(
                    "`{ty}` implements Wire `{}` without a matching `{}`: every wire type \
                     must round-trip",
                    f.name,
                    if f.name == "encode" {
                        "decode"
                    } else {
                        "encode"
                    },
                ),
                related: Vec::new(),
            });
            continue;
        };
        let ef = ir.fn_item(enc);
        let df = ir.fn_item(dec);
        let toks = &ir.files[fi].lexed.tokens;
        impls.push(WireImpl {
            ty,
            file: fi,
            enc_line: ef.line,
            dec_line: df.line,
            enc: encode_side(toks, ef.body.0, ef.body.1),
            dec: decode_side(toks, df.body.0, df.body.1),
        });
    }
    (impls, findings)
}

/// Whether an encode op and a decode op are shape-compatible.
fn compatible(e: &Op, d: &Op) -> bool {
    match (e, d) {
        (Op::Tag(_), Op::Prim { kind, .. }) => kind == "u8",
        (Op::Byte(_), Op::Prim { kind, .. }) => kind == "u8",
        (Op::Raw(_), Op::Prim { kind, .. }) => kind != "bytes",
        (Op::Raw(_), Op::Dec { .. }) => true,
        (Op::Bytes(_), Op::Prim { kind, .. }) => kind == "bytes",
        (Op::Bytes(_), Op::Dec { ty, .. }) => ty == "Vec<u8>" || ty == "String",
        (Op::Len, Op::Prim { kind, .. }) => kind == "u32",
        (Op::Enc { .. }, Op::Dec { .. }) => true,
        (Op::Enc { cast, .. }, Op::Prim { kind, .. }) => match cast {
            Some(c) => c == kind,
            None => kind != "bytes",
        },
        _ => false,
    }
}

/// Whether two operand names agree (unknown names agree with anything;
/// `pid` agrees with `pid_bytes`-style derived locals).
fn names_agree(e: &Op, d: &Op) -> bool {
    match (e.name(), d.name()) {
        (Some(a), Some(b)) => {
            a == b
                || b.strip_prefix(a).is_some_and(|r| r.starts_with('_'))
                || a.strip_prefix(b).is_some_and(|r| r.starts_with('_'))
        }
        _ => true,
    }
}

/// Compares one encode op list with one decode op list.
fn compare_ops(
    w: &WireImpl,
    ctx: &str,
    enc: &[Op],
    dec: &[Op],
    path: &str,
    line: u32,
    findings: &mut Vec<CrossFinding>,
) {
    let related = |w: &WireImpl| {
        vec![RawRelated {
            path: path.to_string(),
            line: w.dec_line,
            note: "decode side here".to_string(),
        }]
    };
    if enc.len() != dec.len() {
        findings.push(CrossFinding {
            rule: rules::WIRE_SCHEMA,
            path: path.to_string(),
            line,
            message: format!(
                "encode/decode asymmetry in `{}`{ctx}: encode writes {} fields but decode \
                 reads {} ([{}] vs [{}])",
                w.ty,
                enc.len(),
                dec.len(),
                enc.iter().map(Op::render).collect::<Vec<_>>().join(", "),
                dec.iter().map(Op::render).collect::<Vec<_>>().join(", "),
            ),
            related: related(w),
        });
        return;
    }
    for (idx, (e, d)) in enc.iter().zip(dec.iter()).enumerate() {
        if !compatible(e, d) || !names_agree(e, d) {
            findings.push(CrossFinding {
                rule: rules::WIRE_SCHEMA,
                path: path.to_string(),
                line,
                message: format!(
                    "encode/decode asymmetry in `{}`{ctx}: field {} is written as `{}` but \
                     read as `{}`",
                    w.ty,
                    idx + 1,
                    e.render(),
                    d.render(),
                ),
                related: related(w),
            });
        }
    }
}

/// A byte-coded enum: one raw byte on encode, a unit-arm tag match on
/// decode (`bool`, `MainVote`, `PayloadKind`).
fn is_byte_coded(w: &WireImpl) -> bool {
    w.enc.arms.is_empty()
        && !w.dec.arms.is_empty()
        && w.enc.prefix.len() == 1
        && matches!(w.enc.prefix[0], Op::Byte(_))
        && w.dec.arms.iter().all(|a| a.ops.is_empty())
        && w.dec.prefix.is_empty()
}

/// Runs the symmetry check over one impl.
fn check_impl(ir: &WorkspaceIr, w: &WireImpl, findings: &mut Vec<CrossFinding>) {
    let path = ir.files[w.file].path.clone();
    if is_byte_coded(w) {
        return;
    }
    // Variant dispatch must exist on both sides or neither.
    if w.enc.arms.is_empty() != w.dec.arms.is_empty() {
        let (has, lacks) = if w.enc.arms.is_empty() {
            ("decode", "encode")
        } else {
            ("encode", "decode")
        };
        findings.push(CrossFinding {
            rule: rules::WIRE_SCHEMA,
            path: path.clone(),
            line: w.enc_line,
            message: format!(
                "encode/decode asymmetry in `{}`: {has} dispatches on a discriminant but \
                 {lacks} does not",
                w.ty
            ),
            related: vec![RawRelated {
                path: path.clone(),
                line: w.dec_line,
                note: "decode side here".to_string(),
            }],
        });
        return;
    }
    compare_ops(
        w,
        "",
        &w.enc.prefix,
        &w.dec.prefix,
        &path,
        w.enc_line,
        findings,
    );
    for arm in &w.enc.arms {
        let ctx = format!(" variant `{}`", arm.variant);
        let Some(tag) = &arm.tag else {
            findings.push(CrossFinding {
                rule: rules::WIRE_SCHEMA,
                path: path.clone(),
                line: arm.line,
                message: format!(
                    "encode arm `{}` of `{}` does not start with a named tag byte",
                    arm.variant, w.ty
                ),
                related: Vec::new(),
            });
            continue;
        };
        let Some(dec_arm) = w.dec.arms.iter().find(|a| a.tag.as_ref() == Some(tag)) else {
            findings.push(CrossFinding {
                rule: rules::WIRE_SCHEMA,
                path: path.clone(),
                line: arm.line,
                message: format!(
                    "variant `{}` of `{}` is encoded under `{tag}` but decode has no arm \
                     for that tag",
                    arm.variant, w.ty
                ),
                related: vec![RawRelated {
                    path: path.clone(),
                    line: w.dec_line,
                    note: "decode side here".to_string(),
                }],
            });
            continue;
        };
        compare_ops(w, &ctx, &arm.ops, &dec_arm.ops, &path, arm.line, findings);
    }
    for dec_arm in &w.dec.arms {
        let tag = dec_arm.tag.as_deref().unwrap_or("");
        if !w.enc.arms.iter().any(|a| a.tag.as_deref() == Some(tag)) {
            findings.push(CrossFinding {
                rule: rules::WIRE_SCHEMA,
                path: path.clone(),
                line: dec_arm.line,
                message: format!(
                    "decode of `{}` accepts tag `{tag}` but no encode arm ever writes it",
                    w.ty
                ),
                related: vec![RawRelated {
                    path: path.clone(),
                    line: w.enc_line,
                    note: "encode side here".to_string(),
                }],
            });
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the extracted schema as deterministic JSON.
fn render_schema(ir: &WorkspaceIr, impls: &[WireImpl]) -> String {
    let version = ir.const_value("WIRE_FORMAT_VERSION").unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n  \"format\": \"sintra-wire-schema-v1\",\n");
    out.push_str(&format!("  \"wire_format_version\": {version},\n"));

    // Every named discriminant in files that define Wire impls.
    let mut tags: BTreeMap<String, u64> = BTreeMap::new();
    let wire_files: Vec<usize> = {
        let mut fs: Vec<usize> = impls.iter().map(|w| w.file).collect();
        fs.sort_unstable();
        fs.dedup();
        fs
    };
    for &fi in &wire_files {
        for c in &ir.files[fi].consts {
            if (c.name.starts_with("TAG_") || c.name.starts_with("CODE_")) && c.value.is_some() {
                tags.insert(c.name.clone(), c.value.unwrap_or(0));
            }
        }
    }
    out.push_str("  \"tags\": {\n");
    let tag_lines: Vec<String> = tags
        .iter()
        .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), v))
        .collect();
    out.push_str(&tag_lines.join(",\n"));
    out.push_str("\n  },\n");

    // Types, sorted by name (then path for duplicates across files).
    let mut sorted: Vec<&WireImpl> = impls.iter().collect();
    sorted.sort_by(|a, b| (&a.ty, a.file).cmp(&(&b.ty, b.file)));
    out.push_str("  \"types\": [\n");
    let mut type_blobs = Vec::new();
    for w in sorted {
        let mut b = String::new();
        b.push_str("    {\n");
        b.push_str(&format!("      \"type\": \"{}\",\n", json_escape(&w.ty)));
        b.push_str(&format!(
            "      \"file\": \"{}\",\n",
            json_escape(&ir.files[w.file].path)
        ));
        if is_byte_coded(w) {
            let keys: Vec<String> = w
                .dec
                .arms
                .iter()
                .map(|a| format!("\"{}\"", json_escape(a.tag.as_deref().unwrap_or(""))))
                .collect();
            b.push_str(&format!("      \"byte_coded\": [{}]\n", keys.join(", ")));
        } else if w.enc.arms.is_empty() {
            let fields: Vec<String> = w
                .enc
                .prefix
                .iter()
                .map(|o| format!("\"{}\"", json_escape(&o.render())))
                .collect();
            b.push_str(&format!("      \"fields\": [{}]\n", fields.join(", ")));
        } else {
            if !w.enc.prefix.is_empty() {
                let fields: Vec<String> = w
                    .enc
                    .prefix
                    .iter()
                    .map(|o| format!("\"{}\"", json_escape(&o.render())))
                    .collect();
                b.push_str(&format!("      \"prefix\": [{}],\n", fields.join(", ")));
            }
            b.push_str("      \"variants\": [\n");
            let mut arm_blobs = Vec::new();
            for a in &w.enc.arms {
                let fields: Vec<String> = a
                    .ops
                    .iter()
                    .map(|o| format!("\"{}\"", json_escape(&o.render())))
                    .collect();
                arm_blobs.push(format!(
                    "        {{\"variant\": \"{}\", \"tag\": \"{}\", \"fields\": [{}]}}",
                    json_escape(&a.variant),
                    json_escape(a.tag.as_deref().unwrap_or("")),
                    fields.join(", ")
                ));
            }
            b.push_str(&arm_blobs.join(",\n"));
            b.push_str("\n      ]\n");
        }
        b.push_str("    }");
        type_blobs.push(b);
    }
    out.push_str(&type_blobs.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts the wire schema and runs the symmetry checks.
///
/// Returns the rendered schema JSON (empty when the file set has no
/// `Wire` impls) and the asymmetry findings.
pub fn extract(ir: &WorkspaceIr) -> (String, Vec<CrossFinding>) {
    let (impls, mut findings) = collect_impls(ir);
    if impls.is_empty() && findings.is_empty() {
        return (String::new(), findings);
    }
    for w in &impls {
        check_impl(ir, w, &mut findings);
    }
    if !impls.is_empty() && ir.const_value("WIRE_FORMAT_VERSION").is_none() {
        let fi = impls[0].file;
        findings.push(CrossFinding {
            rule: rules::WIRE_SCHEMA,
            path: ir.files[fi].path.clone(),
            line: 1,
            message: "workspace defines Wire impls but no `WIRE_FORMAT_VERSION` const: the \
                      schema-version bump gate needs it in crates/core/src/wire.rs"
                .to_string(),
            related: Vec::new(),
        });
    }
    let schema = if impls.is_empty() {
        String::new()
    } else {
        render_schema(ir, &impls)
    };
    (schema, findings)
}

/// The `wire_format_version` recorded in a rendered or committed schema.
pub fn schema_version(schema: &str) -> Option<u64> {
    let at = schema.find("\"wire_format_version\":")?;
    let rest = schema[at + "\"wire_format_version\":".len()..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Compares the extracted schema against the committed golden.
pub fn golden_findings(ir: &WorkspaceIr, schema: &str, golden: &str) -> Vec<CrossFinding> {
    let mut findings = Vec::new();
    if schema.is_empty() || schema == golden {
        return findings;
    }
    let mut related = Vec::new();
    for file in &ir.files {
        if file.path.ends_with("wire.rs") || file.path.ends_with("message.rs") {
            related.push(RawRelated {
                path: file.path.clone(),
                line: 1,
                note: "wire definitions extracted from here".to_string(),
            });
        }
    }
    findings.push(CrossFinding {
        rule: rules::WIRE_SCHEMA,
        path: "WIRE_SCHEMA.json".to_string(),
        line: 1,
        message: "extracted wire schema differs from the committed WIRE_SCHEMA.json golden: \
                  regenerate with `cargo run -p sintra-lint -- --write-wire-schema` (a wire \
                  format change also requires bumping WIRE_FORMAT_VERSION in \
                  crates/core/src/wire.rs)"
            .to_string(),
        related: related.clone(),
    });
    if schema_version(schema) == schema_version(golden) {
        findings.push(CrossFinding {
            rule: rules::WIRE_SCHEMA,
            path: "WIRE_SCHEMA.json".to_string(),
            line: 1,
            message: "wire schema changed without a WIRE_FORMAT_VERSION bump: wire-breaking \
                      changes must increment the version in crates/core/src/wire.rs in the \
                      same change"
                .to_string(),
            related,
        });
    }
    findings
}
