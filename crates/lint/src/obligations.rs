//! The verification-obligation table and the `verify-before-mutate` rule.
//!
//! Every wire body a replica acts on must be cryptographically checked
//! before the handler mutates protocol state — the paper's intrusion
//! tolerance rests on it. Since the staged pipeline split verification
//! into a pre-verify stage plus `verify_*_cached` helpers, that
//! obligation spans files: the body is declared in `message.rs`, the
//! stateless check lives in `preverify.rs`, and the discharge site is one
//! of nine handler state machines. This module records the obligation per
//! message type and checks, over the [`WorkspaceIr`]:
//!
//! 1. **registry completeness** — every `Body` variant has a table entry,
//!    so adding a wire body without deciding its verifier is a finding;
//! 2. **pre-verify coverage** — every `preverify: true` variant still has
//!    a match arm in the verify stage;
//! 3. **discharge order** — every handler arm reachable from envelope
//!    dispatch discharges its obligation before the first protocol-state
//!    mutation (linearized over the arm's transitive callees, so a
//!    mutation hidden two calls deep in another file is still seen).
//!
//! Obligations come in three discharge modes. `Strict` is the default:
//! verify, then mutate. `Deferred` covers the quarantine pattern, where a
//! handler parks unverified input in a bounded buffer and batch-verifies
//! later (coin shares, early secure-channel shares) — there the rule
//! requires a registered verifier call to be reachable from the arm or
//! present in the handler file, so deleting the batch verification still
//! fails the lint. `Exempt` records, with a reason, the bodies that carry
//! nothing verifiable (hash echoes, bare quorum-counted votes).

use std::collections::BTreeSet;

use crate::ir::{FnId, WorkspaceIr};
use crate::lexer::{Token, TokenKind};
use crate::rules::{self, RawRelated};

/// How a message type's verification obligation is discharged.
#[derive(Debug, Clone, Copy)]
pub enum Discharge {
    /// A registered verifier must be called before the first mutation.
    Strict(&'static [&'static str]),
    /// Verification is deferred into a bounded quarantine: a registered
    /// verifier must be reachable from the arm or present in the file.
    Deferred {
        /// Verifier names that discharge the obligation.
        verifiers: &'static [&'static str],
        /// Why deferral is sound for this body.
        reason: &'static str,
    },
    /// The body carries nothing cryptographically verifiable.
    Exempt(&'static str),
}

/// One row of the obligation table.
#[derive(Debug, Clone, Copy)]
pub struct Obligation {
    /// The `Body` variant name.
    pub variant: &'static str,
    /// How handlers must discharge it.
    pub discharge: Discharge,
    /// Whether the stateless verify stage (`preverify.rs`) must cover it.
    pub preverify: bool,
}

/// The per-message-type verification obligations. Every `Body` variant
/// must appear here; the lint fails on a variant it has never heard of.
pub const OBLIGATIONS: &[Obligation] = &[
    Obligation {
        variant: "RbSend",
        discharge: Discharge::Exempt(
            "unsigned Bracha send: integrity comes from the echo/ready quorums over its digest",
        ),
        preverify: false,
    },
    Obligation {
        variant: "RbEcho",
        discharge: Discharge::Exempt(
            "unsigned echo vote: 2t+1 echo intersection provides integrity, there is no signature to check",
        ),
        preverify: false,
    },
    Obligation {
        variant: "RbReady",
        discharge: Discharge::Exempt(
            "unsigned ready vote over a digest: amplification is quorum-gated, not signature-gated",
        ),
        preverify: false,
    },
    Obligation {
        variant: "CbSend",
        discharge: Discharge::Exempt(
            "sender-identity-gated payload: the receiver signs what it echoes, the send itself is unsigned",
        ),
        preverify: false,
    },
    Obligation {
        variant: "CbEcho",
        discharge: Discharge::Strict(&["verify_share"]),
        preverify: false,
    },
    Obligation {
        variant: "CbFinal",
        discharge: Discharge::Strict(&["verify_threshold_cached"]),
        preverify: true,
    },
    Obligation {
        variant: "BaPreVote",
        discharge: Discharge::Strict(&["verify_share_cached"]),
        preverify: true,
    },
    Obligation {
        variant: "BaMainVote",
        discharge: Discharge::Strict(&["verify_share_cached"]),
        preverify: true,
    },
    Obligation {
        variant: "BaCoinShare",
        discharge: Discharge::Deferred {
            verifiers: &["verify_share", "verify_shares", "consume_preverified"],
            reason: "shares are parked per-sender (bounded by n per round) and batch-verified at quorum",
        },
        preverify: true,
    },
    Obligation {
        variant: "BaDecide",
        discharge: Discharge::Strict(&["verify_threshold_cached"]),
        preverify: true,
    },
    Obligation {
        variant: "VbaVote",
        discharge: Discharge::Deferred {
            verifiers: &["validate_closing_bytes"],
            reason: "yes-votes carry a closing certificate validated on unpark; no-votes are bare quorum-counted bits",
        },
        preverify: false,
    },
    Obligation {
        variant: "AcEntry",
        discharge: Discharge::Strict(&["verify_party_sig_cached"]),
        preverify: true,
    },
    Obligation {
        variant: "ScShare",
        discharge: Discharge::Deferred {
            verifiers: &["verify_share"],
            reason: "early shares are parked in a 2n-bounded quarantine until their ciphertext is ordered, then verified",
        },
        preverify: false,
    },
    Obligation {
        variant: "OptSubmit",
        discharge: Discharge::Exempt(
            "unsigned client submission: delivery is gated downstream by a quorum of signed acks",
        ),
        preverify: false,
    },
    Obligation {
        variant: "OptAck",
        discharge: Discharge::Strict(&["verify_party_sig_cached"]),
        preverify: true,
    },
    Obligation {
        variant: "OptComplain",
        discharge: Discharge::Exempt(
            "unsigned liveness complaint: epoch change requires t+1 distinct complainers",
        ),
        preverify: false,
    },
    Obligation {
        variant: "OptState",
        discharge: Discharge::Strict(&["validate_state"]),
        preverify: false,
    },
];

/// Methods that mutate the container/field they are called on.
const MUTATING_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "extend",
    "extend_from_slice",
    "clear",
    "entry",
    "append",
    "drain",
    "retain",
    "resize",
    "truncate",
    "push_str",
    "swap",
    "sort",
    "sort_by",
    "or_insert",
    "or_default",
    "or_insert_with",
    "get_or_insert_with",
];

/// A finding produced by the cross-file pass, with related evidence.
#[derive(Debug)]
pub struct CrossFinding {
    /// Rule name.
    pub rule: &'static str,
    /// Primary path (where a suppression directive applies).
    pub path: String,
    /// Primary 1-based line.
    pub line: u32,
    /// Stable description (baseline key material — no line numbers).
    pub message: String,
    /// Supporting evidence locations, possibly in other files.
    pub related: Vec<RawRelated>,
}

fn obligation_for(variant: &str) -> Option<&'static Obligation> {
    OBLIGATIONS.iter().find(|o| o.variant == variant)
}

/// Files whose `Body::` match arms are handler dispatch sites.
fn in_handler_scope(path: &str) -> bool {
    (path.contains("crates/core/src/") || path.contains("crates/net/src/"))
        && !path.ends_with("wire.rs")
        && !path.ends_with("message.rs")
        && !path.contains("/link/")
        && !path.contains("/sim/")
        && !rules::in_verify_stage(path)
}

/// One event in an arm's linearized execution.
#[derive(Debug, Clone, Copy)]
enum Event {
    Verifier,
    Mutation { file: usize, line: u32 },
}

/// A `Body::<Variant>` match arm found in a handler function.
struct Arm {
    file: usize,
    /// Token index of the `Body` path head.
    at: usize,
    variant: String,
    line: u32,
    /// Body token range of the arm expression.
    body: (usize, usize),
    /// Enclosing function, if resolved.
    enclosing: Option<FnId>,
}

/// Skips one balanced `(..)`/`{..}`/`[..]` group starting at `i`, if any.
fn skip_group(toks: &[Token], i: usize) -> usize {
    let Some(open) = toks.get(i) else { return i };
    let (o, c) = match () {
        _ if open.is_punct('(') => ('(', ')'),
        _ if open.is_punct('{') => ('{', '}'),
        _ if open.is_punct('[') => ('[', ']'),
        _ => return i,
    };
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(o) {
            depth += 1;
        } else if toks[j].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Finds `Body::X` match arms (with optional pattern group and guard) in
/// every handler-scope file of the workspace.
fn collect_arms(ir: &WorkspaceIr) -> Vec<Arm> {
    let mut arms = Vec::new();
    for (fi, file) in ir.files.iter().enumerate() {
        if !in_handler_scope(&file.path) {
            continue;
        }
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("Body")
                || toks[i].in_test
                || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                continue;
            }
            let Some(var_tok) = toks.get(i + 3) else {
                continue;
            };
            if var_tok.kind != TokenKind::Ident
                || !var_tok.text.chars().next().is_some_and(char::is_uppercase)
            {
                continue;
            }
            // Two dispatch shapes reach here: a `match` arm
            // (`Body::X(..) [if guard] => body`) and a let-binding test
            // (`if let Body::X(..) = scrutinee { body }`). Skip the
            // pattern's binding group, then classify.
            let mut j = skip_group(toks, i + 4);
            let is_let = toks
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_ident("let"));
            let mut is_arm = false;
            if is_let {
                // Expect a single `=` (not `==`), then scan past the
                // scrutinee expression to the opening `{` of the block.
                if toks.get(j).is_some_and(|t| t.is_punct('='))
                    && !toks
                        .get(j + 1)
                        .is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
                {
                    j += 1;
                    let mut paren = 0isize;
                    let mut budget = 64usize;
                    while budget > 0 {
                        budget -= 1;
                        let Some(t) = toks.get(j) else { break };
                        if t.is_punct('(') || t.is_punct('[') {
                            paren += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            if paren == 0 {
                                break;
                            }
                            paren -= 1;
                        } else if paren == 0 && t.is_punct('{') {
                            is_arm = true;
                            break;
                        } else if paren == 0 && (t.is_punct(';') || t.is_punct(',')) {
                            break;
                        }
                        j += 1;
                    }
                }
            } else {
                // Look for `=>`, tolerating a short `if` guard.
                let mut paren = 0isize;
                let mut budget = 64usize;
                while budget > 0 {
                    budget -= 1;
                    let Some(t) = toks.get(j) else { break };
                    if t.is_punct('(') {
                        paren += 1;
                    } else if t.is_punct(')') {
                        if paren == 0 {
                            break;
                        }
                        paren -= 1;
                    } else if paren == 0
                        && t.is_punct('=')
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('>'))
                        && !toks.get(j.wrapping_sub(1)).is_some_and(|t| {
                            t.is_punct('=') || t.is_punct('<') || t.is_punct('>') || t.is_punct('!')
                        })
                    {
                        is_arm = true;
                        j += 2;
                        break;
                    } else if paren == 0
                        && (t.is_punct(',')
                            || t.is_punct('{')
                            || t.is_punct(';')
                            || t.is_punct('?'))
                    {
                        break;
                    }
                    j += 1;
                }
            }
            if !is_arm {
                continue;
            }
            // Arm body: a block, or an expression up to `,`/unbalanced `}`.
            let body = if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                (j, skip_group(toks, j))
            } else {
                let start = j;
                let mut depth = 0isize;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(',') {
                        break;
                    }
                    j += 1;
                }
                (start, j)
            };
            let enclosing = file
                .fns
                .iter()
                .enumerate()
                .find(|(_, f)| f.body.0 <= i && i < f.body.1)
                .map(|(gi, _)| (fi, gi));
            arms.push(Arm {
                file: fi,
                at: i,
                variant: var_tok.text.clone(),
                line: toks[i].line,
                body,
                enclosing,
            });
        }
    }
    arms
}

/// Linearizes verifier-call and mutation events for a token range,
/// expanding callees transitively (name-resolved, depth-capped).
fn range_events(
    ir: &WorkspaceIr,
    file: usize,
    range: (usize, usize),
    verifiers: &[&str],
    visited: &mut BTreeSet<FnId>,
    depth: usize,
    events: &mut Vec<Event>,
) {
    let toks = &ir.files[file].lexed.tokens;
    let mut i = range.0;
    while i < range.1.min(toks.len()) {
        let t = &toks[i];
        // `self.<field-chain>` mutation detection.
        if t.is_ident("self") && toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            let mut j = i + 2;
            while let Some(seg) = toks.get(j) {
                if seg.kind != TokenKind::Ident && seg.kind != TokenKind::Num {
                    break;
                }
                let next = toks.get(j + 1);
                if seg.kind == TokenKind::Ident
                    && next.is_some_and(|t| t.is_punct('('))
                    && MUTATING_METHODS.contains(&seg.text.as_str())
                {
                    events.push(Event::Mutation {
                        file,
                        line: seg.line,
                    });
                    break;
                }
                // Step over an index expression: `self.proofs[value] = ..`.
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.is_punct('[')) {
                    k = skip_group(toks, k);
                }
                if let Some(op) = toks.get(k) {
                    let compound = matches!(
                        op.text.as_str(),
                        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                    ) && op.kind == TokenKind::Punct
                        && toks.get(k + 1).is_some_and(|t| t.is_punct('='));
                    let assign = op.is_punct('=')
                        && !toks.get(k + 1).is_some_and(|t| t.is_punct('='))
                        && !toks.get(k.wrapping_sub(1)).is_some_and(|t| {
                            t.is_punct('=') || t.is_punct('<') || t.is_punct('>') || t.is_punct('!')
                        });
                    if compound || assign {
                        events.push(Event::Mutation {
                            file,
                            line: seg.line,
                        });
                        break;
                    }
                }
                // Continue the dotted chain, through method-call parens.
                if next.is_some_and(|t| t.is_punct('(')) {
                    let after = skip_group(toks, j + 1);
                    if toks.get(after).is_some_and(|t| t.is_punct('.')) {
                        j = after + 1;
                        continue;
                    }
                    break;
                }
                if next.is_some_and(|t| t.is_punct('.')) {
                    j += 2;
                    continue;
                }
                break;
            }
        }
        // Calls: verifier discharge or transitive expansion.
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("fn"))
        {
            if verifiers.contains(&t.text.as_str()) {
                events.push(Event::Verifier);
            } else if depth > 0 {
                for &callee in ir.fns_named(&t.text) {
                    let f = ir.fn_item(callee);
                    if f.in_test || f.body.0 == f.body.1 {
                        continue;
                    }
                    let path = &ir.files[callee.0].path;
                    if !path.contains("crates/core/src/") && !path.contains("crates/net/src/") {
                        continue;
                    }
                    if visited.insert(callee) {
                        range_events(ir, callee.0, f.body, verifiers, visited, depth - 1, events);
                    }
                }
            }
        }
        i += 1;
    }
}

/// Whether any registered verifier is called in the file's non-test code.
fn file_calls_verifier(ir: &WorkspaceIr, file: usize, verifiers: &[&str]) -> bool {
    ir.files[file]
        .lexed
        .tokens
        .iter()
        .zip(ir.files[file].lexed.tokens.iter().skip(1))
        .any(|(t, n)| {
            !t.in_test
                && t.kind == TokenKind::Ident
                && n.is_punct('(')
                && verifiers.contains(&t.text.as_str())
        })
}

/// Runs the verify-before-mutate family over the workspace IR.
pub fn check(ir: &WorkspaceIr) -> Vec<CrossFinding> {
    let mut out = Vec::new();
    let body_enum = ir.body_enum();

    // 1. Registry completeness: every wire body needs a table entry.
    if let Some((fi, e)) = body_enum {
        let path = ir.files[fi].path.clone();
        for v in &e.variants {
            if obligation_for(&v.name).is_none() {
                out.push(CrossFinding {
                    rule: rules::VERIFY_MUTATE,
                    path: path.clone(),
                    line: v.line,
                    message: format!(
                        "wire body `{}` has no registered verification obligation: add a row \
                         (verifier, deferred quarantine, or reasoned exemption) to OBLIGATIONS \
                         in crates/lint/src/obligations.rs",
                        v.name
                    ),
                    related: Vec::new(),
                });
            }
        }
    }

    // 2. Pre-verify coverage: the stateless stage must keep its arms.
    if let Some((mfi, e)) = body_enum {
        for file in ir.files.iter() {
            if !rules::in_verify_stage(&file.path) {
                continue;
            }
            let anchor = file
                .fns
                .iter()
                .find(|f| f.name.starts_with("pre_verify"))
                .map(|f| f.line)
                .unwrap_or(1);
            for ob in OBLIGATIONS {
                if !ob.preverify || !e.variants.iter().any(|v| v.name == ob.variant) {
                    continue;
                }
                let covered = file.lexed.tokens.windows(4).any(|w| {
                    !w[0].in_test
                        && w[0].is_ident("Body")
                        && w[1].is_punct(':')
                        && w[2].is_punct(':')
                        && w[3].is_ident(ob.variant)
                });
                if !covered {
                    let vline = e
                        .variants
                        .iter()
                        .find(|v| v.name == ob.variant)
                        .map(|v| v.line)
                        .unwrap_or(1);
                    out.push(CrossFinding {
                        rule: rules::VERIFY_MUTATE,
                        path: file.path.clone(),
                        line: anchor,
                        message: format!(
                            "verify stage no longer covers `Body::{}`: the obligation table marks \
                             it pre-verified, so PreVerifier must keep a match arm for it",
                            ob.variant
                        ),
                        related: vec![RawRelated {
                            path: ir.files[mfi].path.clone(),
                            line: vline,
                            note: "wire body declared here".to_string(),
                        }],
                    });
                }
            }
        }
    }

    // 3. Discharge order per handler arm.
    let reachable = ir.reachable_from_dispatch();
    for arm in collect_arms(ir) {
        let Some(ob) = obligation_for(&arm.variant) else {
            // Unknown variants are reported once, at the enum (above).
            continue;
        };
        if let Some(id) = arm.enclosing {
            if ir.fn_item(id).in_test || !reachable.contains(&id) {
                continue;
            }
        }
        let (verifiers, deferred, reason) = match ob.discharge {
            Discharge::Exempt(_) => continue,
            Discharge::Strict(v) => (v, false, ""),
            Discharge::Deferred { verifiers, reason } => (verifiers, true, reason),
        };
        let mut visited = BTreeSet::new();
        if let Some(id) = arm.enclosing {
            visited.insert(id);
        }
        let mut events = Vec::new();
        // Include the arm's pattern tokens so bindings don't hide events,
        // then the body with transitive expansion.
        range_events(
            ir,
            arm.file,
            (arm.at, arm.body.1),
            verifiers,
            &mut visited,
            4,
            &mut events,
        );

        let first_mutation = events.iter().find_map(|e| match e {
            Event::Mutation { file, line } => Some((*file, *line)),
            _ => None,
        });
        let verifier_pos = events.iter().position(|e| matches!(e, Event::Verifier));
        let mutation_pos = events
            .iter()
            .position(|e| matches!(e, Event::Mutation { .. }));

        let variant_related = || -> Vec<RawRelated> {
            let mut rel = Vec::new();
            if let Some((mut_file, mut_line)) = first_mutation {
                rel.push(RawRelated {
                    path: ir.files[mut_file].path.clone(),
                    line: mut_line,
                    note: "first protocol-state mutation here".to_string(),
                });
            }
            if let Some((mfi, e)) = body_enum {
                if let Some(v) = e.variants.iter().find(|v| v.name == arm.variant) {
                    rel.push(RawRelated {
                        path: ir.files[mfi].path.clone(),
                        line: v.line,
                        note: "wire body declared here".to_string(),
                    });
                }
            }
            rel
        };

        if deferred {
            let discharged = verifier_pos.is_some()
                || file_calls_verifier(ir, arm.file, verifiers)
                || first_mutation.is_none();
            if !discharged {
                out.push(CrossFinding {
                    rule: rules::VERIFY_MUTATE,
                    path: ir.files[arm.file].path.clone(),
                    line: arm.line,
                    message: format!(
                        "handler arm for `Body::{}` never discharges its deferred verification \
                         obligation (expected a reachable call to one of: {}; deferral rationale: {})",
                        arm.variant,
                        verifiers.join(", "),
                        reason
                    ),
                    related: variant_related(),
                });
            }
            continue;
        }

        // Strict: a verifier must run, and before the first mutation.
        if mutation_pos.is_none() {
            continue; // pure observer arm
        }
        let ok = matches!(verifier_pos, Some(v) if v < mutation_pos.unwrap_or(usize::MAX));
        if !ok {
            let what = if verifier_pos.is_none() {
                "without discharging it at all"
            } else {
                "before discharging it"
            };
            out.push(CrossFinding {
                rule: rules::VERIFY_MUTATE,
                path: ir.files[arm.file].path.clone(),
                line: arm.line,
                message: format!(
                    "handler arm for `Body::{}` mutates protocol state {} \
                     (obligation: call one of {} before the first mutation)",
                    arm.variant,
                    what,
                    verifiers.join(", ")
                ),
                related: variant_related(),
            });
        }
    }

    out
}
