//! A forgiving item-level parser on top of [`crate::lexer`].
//!
//! This is not a Rust parser; it is the smallest recognizer that recovers
//! the item structure the cross-file rules need — `fn` items with body
//! token ranges and call edges, `impl`/`trait` context, `enum` variants,
//! and integer `const`s. Anything it does not understand it steps over:
//! like the lexer, malformed input degrades to missing items, never a
//! panic. The one structural assumption is that braces balance, which
//! `rustc` has already enforced for any committed file.

use crate::ir::{Call, ConstItem, EnumItem, FileIr, FnItem, Variant};
use crate::lexer::{lex, Token};

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "else", "move", "break",
    "continue", "ref", "mut", "fn", "where", "impl", "dyn",
];

/// Parses one file into its item-level IR.
pub fn parse_file(path: &str, src: &str) -> FileIr {
    let lexed = lex(src);
    let mut fns = Vec::new();
    let mut enums = Vec::new();
    let mut consts = Vec::new();
    {
        let toks = &lexed.tokens;
        let n = toks.len();
        let mut i = 0usize;
        let mut depth = 0usize;
        // (brace depth the block opened at, self type, trait name)
        let mut ctx: Vec<(usize, Option<String>, Option<String>)> = Vec::new();

        while i < n {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                while ctx.last().is_some_and(|(d, _, _)| *d >= depth) {
                    ctx.pop();
                }
                i += 1;
                continue;
            }
            if t.is_ident("macro_rules") {
                // Skip the whole definition: macro bodies are token soup
                // (`$t`, `$(...)*`) that must not be mistaken for items.
                let Some(open) = find_punct(toks, i, '{') else {
                    i += 1;
                    continue;
                };
                i = match_brace(toks, open);
                continue;
            }
            if t.is_ident("impl") || t.is_ident("trait") {
                let is_trait = t.is_ident("trait");
                let Some(open) = header_open_brace(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let (self_type, trait_name) = if is_trait {
                    let name = toks[i + 1..open]
                        .iter()
                        .find(|t| t.kind == crate::lexer::TokenKind::Ident)
                        .map(|t| t.text.clone());
                    (None, name)
                } else {
                    parse_impl_header(toks, i + 1, open)
                };
                ctx.push((depth, self_type, trait_name));
                i = open; // the main loop's `{` case will bump `depth`
                continue;
            }
            if t.is_ident("fn") {
                if let Some(f) = parse_fn(toks, i, &ctx) {
                    let next = f.body.1.max(i + 1);
                    fns.push(f);
                    i = next;
                } else {
                    i += 1;
                }
                continue;
            }
            if t.is_ident("enum") {
                if let Some((e, next)) = parse_enum(toks, i) {
                    enums.push(e);
                    i = next;
                } else {
                    i += 1;
                }
                continue;
            }
            if t.is_ident("const") {
                if let Some(c) = parse_const(toks, i) {
                    consts.push(c);
                }
                i += 1;
                continue;
            }
            i += 1;
        }
    }
    FileIr {
        path: path.replace('\\', "/"),
        lexed,
        fns,
        enums,
        consts,
    }
}

/// First index of punctuation `c` at or after `from`.
fn find_punct(toks: &[Token], from: usize, c: char) -> Option<usize> {
    toks[from..]
        .iter()
        .position(|t| t.is_punct(c))
        .map(|p| from + p)
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Finds the `{` that opens an `impl`/`trait` block, scanning an item
/// header from `from`. Angle brackets are tracked so `{` inside a
/// where-clause closure bound is not misread; `->` does not close one;
/// the `;` inside an array type like `[u8; 32]` does not terminate.
fn header_open_brace(toks: &[Token], from: usize) -> Option<usize> {
    let mut angle = 0isize;
    let mut bracket = 0isize;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('-') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            i += 2;
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') && angle <= 0 {
            return Some(i);
        } else if t.is_punct(';') && bracket == 0 {
            return None;
        }
        i += 1;
    }
    None
}

/// Extracts `(self type, trait name)` from an impl header between
/// `start` (just past `impl`) and `open` (its `{`).
fn parse_impl_header(
    toks: &[Token],
    start: usize,
    open: usize,
) -> (Option<String>, Option<String>) {
    // Skip leading generics: `impl<T: Wire> ...`.
    let mut i = start;
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 0isize;
        while i < open {
            if toks[i].is_punct('-') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                i += 2;
                continue;
            }
            if toks[i].is_punct('<') {
                angle += 1;
            } else if toks[i].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Split on a top-level `for`.
    let mut angle = 0isize;
    let mut for_at: Option<usize> = None;
    for (j, t) in toks.iter().enumerate().take(open).skip(i) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && t.is_ident("for") {
            for_at = Some(j);
            break;
        }
    }
    let type_text = |lo: usize, hi: usize| -> Option<String> {
        let mut s = String::new();
        for t in &toks[lo..hi] {
            if t.is_ident("where") {
                break;
            }
            s.push_str(&t.text);
        }
        (!s.is_empty()).then_some(s)
    };
    match for_at {
        Some(f) => {
            let trait_name = toks[i..f]
                .iter()
                .rfind(|t| t.kind == crate::lexer::TokenKind::Ident)
                .map(|t| t.text.clone());
            (type_text(f + 1, open), trait_name)
        }
        None => (type_text(i, open), None),
    }
}

/// Parses a `fn` item starting at the `fn` keyword.
fn parse_fn(
    toks: &[Token],
    at: usize,
    ctx: &[(usize, Option<String>, Option<String>)],
) -> Option<FnItem> {
    let kw = &toks[at];
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    // Scan the signature: find the body `{` (outside parens/brackets) or
    // a terminating `;` (trait declaration without a body).
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut mut_self = false;
    let mut i = at + 2;
    let mut body_open: Option<usize> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('-') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            i += 2;
            continue;
        }
        match () {
            _ if t.is_punct('(') => paren += 1,
            _ if t.is_punct(')') => paren -= 1,
            _ if t.is_punct('[') => bracket += 1,
            _ if t.is_punct(']') => bracket -= 1,
            _ if t.is_ident("self")
                && paren > 0
                && toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|t| t.is_ident("mut")) =>
            {
                mut_self = true;
            }
            _ if t.is_punct('{') && paren == 0 && bracket == 0 => {
                body_open = Some(i);
                break;
            }
            _ if t.is_punct(';') && paren == 0 && bracket == 0 => break,
            _ => {}
        }
        i += 1;
    }
    let (body, calls) = match body_open {
        Some(open) => {
            let end = match_brace(toks, open);
            ((open, end), extract_calls(toks, open, end))
        }
        None => ((at, at), Vec::new()),
    };
    let (self_type, trait_name) = ctx
        .last()
        .map(|(_, s, t)| (s.clone(), t.clone()))
        .unwrap_or((None, None));
    Some(FnItem {
        name: name_tok.text.clone(),
        self_type,
        trait_name,
        line: kw.line,
        in_test: kw.in_test,
        mut_self,
        body,
        calls,
    })
}

/// Collects call edges in a body token range.
fn extract_calls(toks: &[Token], lo: usize, hi: usize) -> Vec<Call> {
    let mut out = Vec::new();
    for i in lo..hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        // `fn name(` is a nested definition, not a call.
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        out.push(Call {
            name: t.text.clone(),
            tok: i,
            line: t.line,
            method: prev.is_some_and(|p| p.is_punct('.')),
        });
    }
    out
}

/// Parses an `enum` item starting at the `enum` keyword. Returns the item
/// and the index one past its closing brace.
fn parse_enum(toks: &[Token], at: usize) -> Option<(EnumItem, usize)> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    let open = header_open_brace(toks, at + 2)?;
    let end = match_brace(toks, open);
    let mut variants = Vec::new();
    let mut depth = 0isize; // ( [ { nesting inside the body
    let mut expect = true;
    for t in toks.iter().take(end.saturating_sub(1)).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            expect = true;
        } else if depth == 0 && expect && t.kind == crate::lexer::TokenKind::Ident {
            variants.push(Variant {
                name: t.text.clone(),
                line: t.line,
            });
            expect = false;
        }
    }
    Some((
        EnumItem {
            name: name_tok.text.clone(),
            line: toks[at].line,
            variants,
        },
        end,
    ))
}

/// Parses `const NAME: Ty = <int literal>;` starting at `const`.
fn parse_const(toks: &[Token], at: usize) -> Option<ConstItem> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != crate::lexer::TokenKind::Ident || name_tok.is_ident("fn") {
        return None;
    }
    // Find `=` before the terminating `;`.
    let mut i = at + 2;
    let mut eq: Option<usize> = None;
    while i < toks.len() && !toks[i].is_punct(';') && !toks[i].is_punct('{') {
        if toks[i].is_punct('=') {
            eq = Some(i);
            break;
        }
        i += 1;
    }
    let value = eq.and_then(|e| {
        let v = toks.get(e + 1)?;
        if v.kind != crate::lexer::TokenKind::Num
            || !toks.get(e + 2).is_some_and(|t| t.is_punct(';'))
        {
            return None;
        }
        parse_int(&v.text)
    });
    Some(ConstItem {
        name: name_tok.text.clone(),
        value,
        line: name_tok.line,
    })
}

/// Parses a decimal / hex / binary integer literal with `_` separators
/// and an optional type suffix.
fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x") {
        (h.to_string(), 16)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b.to_string(), 2)
    } else {
        (t, 10)
    };
    // Strip a `u8`/`u32`/`usize`-style suffix.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_record_context_body_and_calls() {
        let src = "
            impl Wire for Foo {
                fn encode(&self, buf: &mut Vec<u8>) { self.x.encode(buf); }
            }
            impl Chan {
                fn on_entry(&mut self, e: &Entry) { self.store(e); helper(); }
                fn peek(&self) -> u32 { self.n }
            }
            trait Core { fn run(&mut self); }
            fn free() {}
        ";
        let ir = parse_file("crates/core/src/x.rs", src);
        let names: Vec<&str> = ir.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["encode", "on_entry", "peek", "run", "free"]);

        let enc = &ir.fns[0];
        assert_eq!(enc.self_type.as_deref(), Some("Foo"));
        assert_eq!(enc.trait_name.as_deref(), Some("Wire"));
        assert!(!enc.mut_self);
        assert_eq!(enc.calls.len(), 1);
        assert_eq!(enc.calls[0].name, "encode");
        assert!(enc.calls[0].method);

        let on = &ir.fns[1];
        assert_eq!(on.self_type.as_deref(), Some("Chan"));
        assert!(on.trait_name.is_none());
        assert!(on.mut_self);
        let call_names: Vec<&str> = on.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(call_names, vec!["store", "helper"]);

        let run = &ir.fns[3];
        assert_eq!(run.trait_name.as_deref(), Some("Core"));
        assert!(run.mut_self);
        assert_eq!(run.body.0, run.body.1, "bodiless trait fn");
    }

    #[test]
    fn generic_impl_headers_parse() {
        let src = "impl<T: Wire> Wire for Option<T> { fn f(&self) {} }";
        let ir = parse_file("x.rs", src);
        assert_eq!(ir.fns[0].self_type.as_deref(), Some("Option<T>"));
        assert_eq!(ir.fns[0].trait_name.as_deref(), Some("Wire"));

        let src = "impl Wire for [u8; 32] { fn f(&self) {} }";
        let ir = parse_file("x.rs", src);
        assert_eq!(ir.fns[0].self_type.as_deref(), Some("[u8;32]"));
    }

    #[test]
    fn enums_consts_and_macros() {
        let src = "
            const TAG_A: u8 = 3;
            const TAG_B: u8 = 0x10;
            pub enum Body {
                RbSend(Vec<u8>),
                CbFinal { payload: Vec<u8>, sig: Sig },
                #[allow(dead_code)]
                Plain,
            }
            macro_rules! impl_vec { ($t:ty) => { fn bogus() {} }; }
        ";
        let ir = parse_file("x.rs", src);
        assert_eq!(ir.consts.len(), 2);
        assert_eq!(ir.consts[0].value, Some(3));
        assert_eq!(ir.consts[1].value, Some(16));
        let e = &ir.enums[0];
        assert_eq!(e.name, "Body");
        let vs: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(vs, vec!["RbSend", "CbFinal", "Plain"]);
        assert!(ir.fns.is_empty(), "macro body must not leak items");
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests { fn helper() {} }
        ";
        let ir = parse_file("x.rs", src);
        assert!(!ir.fns[0].in_test);
        assert!(ir.fns[1].in_test);
    }
}
