//! The cross-file intermediate representation.
//!
//! [`crate::parse`] lifts each file's token stream into a [`FileIr`]:
//! functions with body token ranges and outgoing call edges, enums with
//! their variants, integer constants, and `impl` context. A
//! [`WorkspaceIr`] glues the per-file IRs together and answers the two
//! cross-file questions the v2 rules ask: *which functions are reachable
//! from envelope dispatch* and *where is `enum Body` declared*.
//!
//! Calls are resolved **by name**, deliberately: a token-level lexer has
//! no type information, so `x.handle(..)` edges to every function named
//! `handle`. That over-approximates the call graph, which is the safe
//! direction for both uses here — reachability (analyzing one arm too
//! many is noise at worst) and verifier discharge (an obligation is only
//! discharged by calling a function whose *name* is a registered
//! verifier, which is also how a human auditor greps for it).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::Lexed;

/// One outgoing call edge inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (the last path segment before the `(`).
    pub name: String,
    /// Token index of the callee identifier in the file's token stream.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Whether the call is a method call (`x.name(..)`).
    pub method: bool,
}

/// A function item with its body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// The `impl`/`trait` type the function is defined on, if any
    /// (`impl Foo` / `impl Bar for Foo` both record `Foo`-ish context).
    pub self_type: Option<String>,
    /// The trait name for `impl Trait for Type` / `trait Trait` contexts.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function sits under `#[test]`/`#[cfg(test)]`.
    pub in_test: bool,
    /// Whether the function takes `&mut self` (or `mut self`).
    pub mut_self: bool,
    /// Token range of the body **including** the braces, as half-open
    /// `[start, end)` indices into the file's token stream. Empty for
    /// bodiless trait declarations.
    pub body: (usize, usize),
    /// Outgoing call edges in source order.
    pub calls: Vec<Call>,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// An enum item.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variants in source order.
    pub variants: Vec<Variant>,
}

/// An integer constant (`const NAME: u8 = 7;`).
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Constant name.
    pub name: String,
    /// Parsed value when the initializer is a literal integer.
    pub value: Option<u64>,
    /// 1-based source line.
    pub line: u32,
}

/// The item-level IR of one file.
#[derive(Debug)]
pub struct FileIr {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The underlying token stream (rules scan body ranges directly).
    pub lexed: Lexed,
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// Enums in source order.
    pub enums: Vec<EnumItem>,
    /// Integer constants in source order.
    pub consts: Vec<ConstItem>,
}

/// A function id: `(file index, fn index)` within a [`WorkspaceIr`].
pub type FnId = (usize, usize);

/// The cross-file IR for a set of files.
#[derive(Debug)]
pub struct WorkspaceIr {
    /// Per-file IRs, in the input order (analyze passes sort by path).
    pub files: Vec<FileIr>,
    /// Function name → every definition with that name.
    by_name: BTreeMap<String, Vec<FnId>>,
}

impl WorkspaceIr {
    /// Builds the IR over `(path, source)` pairs.
    pub fn build(files: &[(String, String)]) -> Self {
        let files: Vec<FileIr> = files
            .iter()
            .map(|(p, s)| crate::parse::parse_file(p, s))
            .collect();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        WorkspaceIr { files, by_name }
    }

    /// Every function definition with the given name.
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The function item for an id.
    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// Finds `enum Body` in a `message.rs` file (the wire-body registry).
    pub fn body_enum(&self) -> Option<(usize, &EnumItem)> {
        for (fi, file) in self.files.iter().enumerate() {
            if !file.path.ends_with("message.rs") {
                continue;
            }
            if let Some(e) = file.enums.iter().find(|e| e.name == "Body") {
                return Some((fi, e));
            }
        }
        None
    }

    /// The constant value of `name`, searching every file.
    pub fn const_value(&self, name: &str) -> Option<u64> {
        self.files
            .iter()
            .flat_map(|f| f.consts.iter())
            .find(|c| c.name == name)
            .and_then(|c| c.value)
    }

    /// Function ids reachable from envelope dispatch, via name-resolved
    /// call edges (test code excluded).
    ///
    /// Roots are every non-test function named `handle_envelope`; when a
    /// file set has none (small fixtures), functions named `handle` or
    /// `on_message` serve as fallback roots so the rule still exercises.
    pub fn reachable_from_dispatch(&self) -> BTreeSet<FnId> {
        let mut roots: Vec<FnId> = self.live_fns_named("handle_envelope");
        if roots.is_empty() {
            roots = self.live_fns_named("handle");
            roots.extend(self.live_fns_named("on_message"));
        }
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: VecDeque<FnId> = roots.into();
        while let Some(id) = queue.pop_front() {
            for call in &self.fn_item(id).calls {
                for &callee in self.fns_named(&call.name) {
                    if !self.fn_item(callee).in_test && seen.insert(callee) {
                        queue.push_back(callee);
                    }
                }
            }
        }
        seen
    }

    fn live_fns_named(&self, name: &str) -> Vec<FnId> {
        self.fns_named(name)
            .iter()
            .copied()
            .filter(|&id| !self.fn_item(id).in_test)
            .collect()
    }
}
