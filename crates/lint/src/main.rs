//! CLI for `sintra-lint`.
//!
//! ```text
//! cargo run -p sintra-lint [-- --root DIR --format human|json --out FILE
//!                             --baseline FILE --write-baseline]
//! ```
//!
//! Exit codes: `0` clean (or baseline written), `1` open findings,
//! `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use sintra_lint::{
    analyze_workspace, parse_baseline, render_baseline, render_human, render_json, status_of,
    Status,
};

const USAGE: &str = "usage: sintra-lint [--root DIR] [--format human|json] [--out FILE] [--baseline FILE] [--write-baseline]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("sintra-lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut baseline_file: Option<PathBuf> = None;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return fail(USAGE),
            },
            "--format" => match args.next().as_deref() {
                Some(v @ ("human" | "json")) => format = v.to_string(),
                _ => return fail("--format must be `human` or `json`"),
            },
            "--out" => match args.next() {
                Some(v) => out_file = Some(PathBuf::from(v)),
                None => return fail(USAGE),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_file = Some(PathBuf::from(v)),
                None => return fail(USAGE),
            },
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    if !root.join("crates").is_dir() {
        return fail(&format!(
            "`{}` has no crates/ directory; pass --root <workspace root>",
            root.display()
        ));
    }

    let findings = match analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => return fail(&format!("walking workspace: {e}")),
    };

    let baseline_path = baseline_file.unwrap_or_else(|| root.join("crates/lint/baseline.json"));
    if write_baseline {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            return fail(&format!("writing {}: {e}", baseline_path.display()));
        }
        let n = findings.iter().filter(|f| f.suppressed.is_none()).count();
        println!(
            "sintra-lint: wrote {n} finding(s) to {}",
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline: BTreeSet<String> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(set) => set,
            Err(e) => return fail(&format!("parsing {}: {e}", baseline_path.display())),
        },
        // A missing baseline is an empty one (fresh checkout of a clean tree).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeSet::new(),
        Err(e) => return fail(&format!("reading {}: {e}", baseline_path.display())),
    };

    let rendered = match format.as_str() {
        "json" => render_json(&findings, &baseline),
        _ => render_human(&findings, &baseline),
    };
    match &out_file {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                return fail(&format!("writing {}: {e}", path.display()));
            }
        }
        None => print!("{rendered}"),
    }

    let open = findings
        .iter()
        .filter(|f| status_of(f, &baseline) == Status::Open)
        .count();
    if open > 0 {
        // Echo the count to stderr too, so a --out json run still says
        // why it failed on the console.
        eprintln!("sintra-lint: {open} open finding(s)");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
