//! CLI for `sintra-lint`.
//!
//! ```text
//! cargo run -p sintra-lint [-- --root DIR --format human|json --out FILE
//!                             --baseline FILE --write-baseline
//!                             --changed-only [--base REF]
//!                             --write-wire-schema]
//! ```
//!
//! Exit codes: `0` clean (or baseline/schema written), `1` open findings,
//! `2` usage or I/O error — including a refused schema write when the
//! wire format changed without a `WIRE_FORMAT_VERSION` bump.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sintra_lint::{
    analyze_workspace, collect_workspace_files, extract_wire_schema, parse_baseline,
    render_baseline, render_human, render_json, schema, status_of, Finding, Status,
};

const USAGE: &str = "usage: sintra-lint [--root DIR] [--format human|json] [--out FILE] [--baseline FILE] [--write-baseline] [--changed-only [--base REF]] [--write-wire-schema]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("sintra-lint: {msg}");
    ExitCode::from(2)
}

/// The schema with its `wire_format_version` line removed, so two schemas
/// can be compared for *structural* drift independent of the version bump.
fn schema_body(schema: &str) -> String {
    schema
        .lines()
        .filter(|l| !l.contains("\"wire_format_version\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Regenerates `WIRE_SCHEMA.json`, refusing (exit 2) when the schema body
/// changed but `WIRE_FORMAT_VERSION` did not: a wire-format break must be
/// an explicit, versioned event.
fn write_wire_schema(root: &Path) -> ExitCode {
    let files = match collect_workspace_files(root) {
        Ok(f) => f,
        Err(e) => return fail(&format!("walking workspace: {e}")),
    };
    let schema = extract_wire_schema(&files);
    if schema.is_empty() {
        return fail("workspace defines no Wire impls; nothing to extract");
    }
    let golden_path = root.join("WIRE_SCHEMA.json");
    let old = std::fs::read_to_string(&golden_path).unwrap_or_default();
    if !old.is_empty()
        && schema_body(&old) != schema_body(&schema)
        && schema::schema_version(&old) == schema::schema_version(&schema)
    {
        return fail(
            "wire schema changed but WIRE_FORMAT_VERSION did not: bump the const in \
             crates/core/src/wire.rs in the same commit, then rerun --write-wire-schema",
        );
    }
    if let Err(e) = std::fs::write(&golden_path, &schema) {
        return fail(&format!("writing {}: {e}", golden_path.display()));
    }
    if old == schema {
        println!("sintra-lint: {} is up to date", golden_path.display());
    } else {
        println!("sintra-lint: wrote {}", golden_path.display());
    }
    ExitCode::SUCCESS
}

/// Workspace-relative paths changed against `base`, per
/// `git diff --name-only`, plus anything not yet committed.
fn changed_paths(root: &Path, base: &str) -> Result<BTreeSet<String>, String> {
    let out = std::process::Command::new("git")
        .arg("diff")
        .arg("--name-only")
        .arg(base)
        .current_dir(root)
        .output()
        .map_err(|e| format!("running git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| !l.is_empty())
        .collect())
}

/// Whether a finding touches any changed path, at its primary location or
/// any related (cross-file evidence) location.
fn touches_changed(f: &Finding, changed: &BTreeSet<String>) -> bool {
    changed.contains(&f.path) || f.related.iter().any(|r| changed.contains(&r.path))
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut baseline_file: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut changed_only = false;
    let mut base = "HEAD".to_string();
    let mut write_schema = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return fail(USAGE),
            },
            "--format" => match args.next().as_deref() {
                Some(v @ ("human" | "json")) => format = v.to_string(),
                _ => return fail("--format must be `human` or `json`"),
            },
            "--out" => match args.next() {
                Some(v) => out_file = Some(PathBuf::from(v)),
                None => return fail(USAGE),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_file = Some(PathBuf::from(v)),
                None => return fail(USAGE),
            },
            "--write-baseline" => write_baseline = true,
            "--changed-only" => changed_only = true,
            "--base" => match args.next() {
                Some(v) => base = v,
                None => return fail(USAGE),
            },
            "--write-wire-schema" => write_schema = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    if !root.join("crates").is_dir() {
        return fail(&format!(
            "`{}` has no crates/ directory; pass --root <workspace root>",
            root.display()
        ));
    }

    if write_schema {
        return write_wire_schema(&root);
    }

    let mut findings = match analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => return fail(&format!("walking workspace: {e}")),
    };

    if changed_only {
        // Analysis always runs over the whole workspace (the cross-file
        // rules need global context); only the report is narrowed.
        let changed = match changed_paths(&root, &base) {
            Ok(c) => c,
            Err(e) => return fail(&e),
        };
        findings.retain(|f| touches_changed(f, &changed));
    }

    let baseline_path = baseline_file.unwrap_or_else(|| root.join("crates/lint/baseline.json"));
    if write_baseline {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            return fail(&format!("writing {}: {e}", baseline_path.display()));
        }
        let n = findings.iter().filter(|f| f.suppressed.is_none()).count();
        println!(
            "sintra-lint: wrote {n} finding(s) to {}",
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline: BTreeSet<String> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(set) => set,
            Err(e) => return fail(&format!("parsing {}: {e}", baseline_path.display())),
        },
        // A missing baseline is an empty one (fresh checkout of a clean tree).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeSet::new(),
        Err(e) => return fail(&format!("reading {}: {e}", baseline_path.display())),
    };

    let rendered = match format.as_str() {
        "json" => render_json(&findings, &baseline),
        _ => render_human(&findings, &baseline),
    };
    match &out_file {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                return fail(&format!("writing {}: {e}", path.display()));
            }
        }
        None => print!("{rendered}"),
    }

    let open = findings
        .iter()
        .filter(|f| status_of(f, &baseline) == Status::Open)
        .count();
    if open > 0 {
        // Echo the count to stderr too, so a --out json run still says
        // why it failed on the console.
        eprintln!("sintra-lint: {open} open finding(s)");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
