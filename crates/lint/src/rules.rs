//! The five protocol-safety rules.
//!
//! Each rule is a pass over the token stream of one file, scoped by the
//! file's workspace-relative path. The rules encode *protocol* obligations
//! that the Rust compiler cannot see:
//!
//! * [`DETERMINISM`] — replicated state machines must behave identically
//!   on every replica, so randomly-seeded containers and ambient
//!   time/entropy sources are banned from `crates/core` and from the
//!   staged pipeline's verify-stage (`preverify`) modules in any crate.
//! * [`QUORUM`] — Byzantine threshold arithmetic (`n - t`, `t + 1`,
//!   `2t + 1`, ...) must go through the named helpers on `GroupContext`
//!   so every bound has exactly one definition and one proof obligation.
//! * [`PANIC_POLICY`] — protocol, link, and pipeline-worker code must not
//!   limp past a violated invariant with a bare `unwrap`/`expect`/
//!   `panic!`; failures route through the `invariant*` macros, which the
//!   server loop catches to write a flight-recorder dump before unwinding.
//! * [`WIRE_STABILITY`] — wire discriminants must be named constants
//!   (append-only, greppable) and length prefixes must be checked, never
//!   silently truncated with `as`.
//! * [`UNSAFE_BUDGET`] — `unsafe` is allowed only for crates on an
//!   explicit allowlist; today that list is empty and every crate builds
//!   with `#![forbid(unsafe_code)]`.

use crate::lexer::{Lexed, Token, TokenKind};

/// Rule name: deterministic replica state (bans `HashMap`, clocks, OS entropy).
pub const DETERMINISM: &str = "determinism";
/// Rule name: threshold arithmetic must use the `GroupContext` helpers.
pub const QUORUM: &str = "quorum-arithmetic";
/// Rule name: no bare `unwrap`/`expect`/`panic!` in protocol or link code.
pub const PANIC_POLICY: &str = "panic-policy";
/// Rule name: named wire discriminants and checked length encodings.
pub const WIRE_STABILITY: &str = "wire-stability";
/// Rule name: `unsafe` only via the per-crate allowlist.
pub const UNSAFE_BUDGET: &str = "unsafe-budget";
/// Rule name: handlers must discharge the message's verification
/// obligation before the first protocol-state mutation (cross-file).
pub const VERIFY_MUTATE: &str = "verify-before-mutate";
/// Rule name: extracted wire schema must be encode/decode-symmetric and
/// match the committed `WIRE_SCHEMA.json` golden (cross-file).
pub const WIRE_SCHEMA: &str = "wire-schema";
/// Pseudo-rule for malformed `lint:allow` directives (cannot be suppressed).
pub const LINT_DIRECTIVE: &str = "lint-directive";

/// Every suppressible rule, in reporting order.
pub const RULES: &[&str] = &[
    DETERMINISM,
    QUORUM,
    PANIC_POLICY,
    WIRE_STABILITY,
    UNSAFE_BUDGET,
    VERIFY_MUTATE,
    WIRE_SCHEMA,
];

/// Crate-path prefixes permitted to contain `unsafe` code. Deliberately
/// empty: growing this list is a reviewed decision, not a local edit.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// A rule hit before suppression processing.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// The rule that fired.
    pub rule: &'static str,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description, stable across runs (baseline key).
    pub message: String,
}

/// A supporting evidence location for a cross-file finding, before
/// suppression processing.
#[derive(Debug, Clone)]
pub struct RawRelated {
    /// Workspace-relative path of the evidence.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What this location shows (e.g. "first mutation here").
    pub note: String,
}

fn in_core(path: &str) -> bool {
    path.contains("crates/core/src/")
}

fn in_net(path: &str) -> bool {
    path.contains("crates/net/src/")
}

/// The staged pipeline's stateless verify stage: `preverify` modules in any
/// crate. The stage is replayed and compared across replicas (a worker's
/// verdict must be a pure function of the envelope bytes and key material),
/// so the determinism bans — including the wall-clock ban — follow the
/// module wherever it lives, not just under `crates/core`.
pub(crate) fn in_verify_stage(path: &str) -> bool {
    path.ends_with("preverify.rs") || path.contains("/preverify/")
}

/// Crypto-worker pipeline modules (`pipeline.rs` or a `pipeline/` dir) in
/// any crate. A worker thread that dies on a bare `unwrap` silently wedges
/// the admission reorder buffer — the server loop waits forever for an
/// admission sequence number that will never be re-injected — so the
/// panic policy follows pipeline code out of `crates/net` too. Note the
/// determinism rules deliberately do *not* extend here: the worker loop's
/// `Instant` metering never influences a verdict.
fn in_pipeline(path: &str) -> bool {
    path.ends_with("pipeline.rs") || path.contains("/pipeline/")
}

fn in_wire_scope(path: &str) -> bool {
    path.ends_with("wire.rs") || path.ends_with("message.rs") || path.contains("/src/link/")
}

/// Identifiers whose presence in `crates/core` breaks replica determinism,
/// with the reason each is banned.
const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order depends on the per-process random hasher seed, so replicas diverge; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order depends on the per-process random hasher seed, so replicas diverge; use BTreeSet",
    ),
    (
        "RandomState",
        "randomly seeded hasher state makes container behavior differ across replicas",
    ),
    (
        "DefaultHasher",
        "hasher output is not a protocol-stable function; replicas diverge",
    ),
    (
        "Instant",
        "wall-clock reads are nondeterministic; protocol code must take time from the runtime, not the OS",
    ),
    (
        "SystemTime",
        "wall-clock reads are nondeterministic; protocol code must take time from the runtime, not the OS",
    ),
    (
        "thread_rng",
        "OS-seeded randomness breaks replay; randomness comes from the threshold coin or a seeded generator",
    ),
    (
        "OsRng",
        "OS entropy breaks replay; randomness comes from the threshold coin or a seeded generator",
    ),
    (
        "getrandom",
        "OS entropy breaks replay; randomness comes from the threshold coin or a seeded generator",
    ),
];

/// Runs every applicable rule over one lexed file.
pub fn run_rules(path: &str, lexed: &Lexed) -> Vec<RawFinding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let live = |i: usize| -> bool { !toks[i].in_test };

    let punct_at = |i: isize, c: char| -> bool {
        i >= 0 && toks.get(i as usize).is_some_and(|t| t.is_punct(c))
    };
    let ident_at = |i: isize, s: &str| -> bool {
        i >= 0 && toks.get(i as usize).is_some_and(|t| t.is_ident(s))
    };
    // `%` is deliberately absent: `epoch % n` style rotation/indexing is
    // not a threshold bound, while every quorum expression uses + - * /.
    let arith_at = |i: isize| -> bool {
        i >= 0
            && toks.get(i as usize).is_some_and(|t| {
                t.kind == TokenKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "/")
            })
    };

    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !live(i) {
            continue;
        }
        let i_ = i as isize;
        let name = tok.text.as_str();

        // --- determinism (crates/core + verify-stage modules) --------------
        if in_core(path) || in_verify_stage(path) {
            if let Some((_, why)) = NONDETERMINISTIC_IDENTS.iter().find(|(id, _)| *id == name) {
                out.push(RawFinding {
                    rule: DETERMINISM,
                    line: tok.line,
                    message: format!("`{name}` in protocol code: {why}"),
                });
            }
        }

        // --- quorum-arithmetic (crates/core only) --------------------------
        if in_core(path) && (name == "n" || name == "t") {
            // `.n()` / `.t()` as an operand of + - * / %: the bound should
            // be a named GroupContext helper, not inline arithmetic.
            if punct_at(i_ - 1, '.') && punct_at(i_ + 1, '(') && punct_at(i_ + 2, ')') {
                let mut j = i_ - 2;
                while j >= 0
                    && (toks[j as usize].kind == TokenKind::Ident
                        || toks[j as usize].is_punct('.')
                        || toks[j as usize].is_punct(':'))
                {
                    j -= 1;
                }
                if arith_at(i_ + 3) || arith_at(j) {
                    out.push(RawFinding {
                        rule: QUORUM,
                        line: tok.line,
                        message: format!(
                            "inline arithmetic on `.{name}()`: thresholds must use the named GroupContext helpers (quorum, one_honest, ready_quorum, n_minus_t, fault_budget, fairness_batch)"
                        ),
                    });
                }
            } else if !punct_at(i_ - 1, '.') && (arith_at(i_ - 1) || arith_at(i_ + 1)) {
                // A bare `n`/`t` variable combined arithmetically — the
                // classic `n - t` / `t + 1` spelled out inline.
                out.push(RawFinding {
                    rule: QUORUM,
                    line: tok.line,
                    message: format!(
                        "arithmetic on bare `{name}`: spell the threshold with a named GroupContext helper instead of inline group arithmetic"
                    ),
                });
            }
        }

        // --- panic-policy (crates/core + crates/net + pipeline modules) ----
        if in_core(path) || in_net(path) || in_pipeline(path) {
            let called = punct_at(i_ - 1, '.') && punct_at(i_ + 1, '(');
            if name == "unwrap" && called {
                // `.lock().unwrap()` is sanctioned: a poisoned mutex means a
                // sibling thread already panicked, and propagating is the
                // correct reaction.
                let lock_chain =
                    punct_at(i_ - 2, ')') && punct_at(i_ - 3, '(') && ident_at(i_ - 4, "lock");
                if !lock_chain {
                    out.push(RawFinding {
                        rule: PANIC_POLICY,
                        line: tok.line,
                        message: "bare `.unwrap()` in protocol/link code: route the can't-happen case through `invariant_unwrap!`/`or_invariant` so the flight recorder dumps before unwinding".to_string(),
                    });
                }
            }
            if name == "expect" && called {
                out.push(RawFinding {
                    rule: PANIC_POLICY,
                    line: tok.line,
                    message: "bare `.expect()` in protocol/link code: route the can't-happen case through `invariant_unwrap!`/`or_invariant` so the flight recorder dumps before unwinding".to_string(),
                });
            }
            if (name == "panic"
                || name == "unreachable"
                || name == "todo"
                || name == "unimplemented")
                && punct_at(i_ + 1, '!')
            {
                out.push(RawFinding {
                    rule: PANIC_POLICY,
                    line: tok.line,
                    message: format!(
                        "bare `{name}!` in protocol/link code: use `invariant_violated!`/`invariant!` so the panic carries the invariant prefix and triggers the flight-recorder dump"
                    ),
                });
            }
        }

        // --- wire-stability ------------------------------------------------
        if in_wire_scope(path) {
            if name == "push"
                && punct_at(i_ + 1, '(')
                && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Num)
                && punct_at(i_ + 3, ')')
            {
                out.push(RawFinding {
                    rule: WIRE_STABILITY,
                    line: tok.line,
                    message: format!(
                        "raw tag byte `{}` pushed inline: wire discriminants must be named constants (TAG_*/KIND_*), explicit and append-only",
                        toks[i + 2].text
                    ),
                });
            }
            if name == "as" {
                let narrow =
                    ident_at(i_ + 1, "u8") || ident_at(i_ + 1, "u16") || ident_at(i_ + 1, "u32");
                if narrow {
                    let len_ident = |t: &Token| {
                        t.kind == TokenKind::Ident
                            && matches!(
                                t.text.as_str(),
                                "len"
                                    | "length"
                                    | "size"
                                    | "count"
                                    | "remaining"
                                    | "pending"
                                    | "declared"
                            )
                    };
                    let direct = i > 0 && len_ident(&toks[i - 1]);
                    let call = punct_at(i_ - 1, ')')
                        && punct_at(i_ - 2, '(')
                        && i >= 3
                        && len_ident(&toks[i - 3]);
                    if direct || call {
                        out.push(RawFinding {
                            rule: WIRE_STABILITY,
                            line: tok.line,
                            message: format!(
                                "length narrowed with `as {}`, which truncates silently: use `u32::try_from` (e.g. via `wire::put_len`) so oversized values fail loudly",
                                toks[i + 1].text
                            ),
                        });
                    }
                }
            }
        }

        // --- unsafe-budget (whole workspace) -------------------------------
        if name == "unsafe" && !UNSAFE_ALLOWLIST.iter().any(|p| path.starts_with(p)) {
            out.push(RawFinding {
                rule: UNSAFE_BUDGET,
                line: tok.line,
                message: "`unsafe` outside the per-crate allowlist: every crate here builds with #![forbid(unsafe_code)]; extending UNSAFE_ALLOWLIST in crates/lint/src/rules.rs is a reviewed decision".to_string(),
            });
        }
    }

    // Match arms on raw discriminants (`3 => ...` or `... => 3`), wire
    // scope only. Scanned pairwise because `=>` lexes as two puncts.
    if in_wire_scope(path) {
        for i in 0..toks.len() {
            if !punct_at(i as isize, '=') || !punct_at(i as isize + 1, '>') || !live(i) {
                continue;
            }
            // `>=` also produces `>`,`=`; require the `=` to not follow `>`.
            if punct_at(i as isize - 1, '>')
                || punct_at(i as isize - 1, '<')
                || punct_at(i as isize - 1, '=')
            {
                continue;
            }
            if i > 0 && toks[i - 1].kind == TokenKind::Num {
                out.push(RawFinding {
                    rule: WIRE_STABILITY,
                    line: toks[i - 1].line,
                    message: format!(
                        "match arm on raw discriminant `{}`: decode against the named TAG_*/KIND_* constant so encode and decode cannot drift apart",
                        toks[i - 1].text
                    ),
                });
            }
            if toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Num) {
                out.push(RawFinding {
                    rule: WIRE_STABILITY,
                    line: toks[i + 2].line,
                    message: format!(
                        "raw discriminant `{}` as a match-arm value: name the wire constant so the mapping is explicit and append-only",
                        toks[i + 2].text
                    ),
                });
            }
        }
    }

    out
}
