use std::collections::HashMap;

pub struct Tally {
    votes: HashMap<u32, bool>,
}

pub fn now_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}
