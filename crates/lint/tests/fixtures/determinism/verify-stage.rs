// A verify stage that consults the wall clock: its verdict is no longer a
// pure function of the envelope bytes, so replaying the same envelope on
// another replica (or rerunning the batch after a worker restart) can
// produce a different answer. Fed through a `preverify` virtual path
// *outside* crates/core to prove the scope follows the module.
pub fn pre_verify(envelope: &[u8]) -> bool {
    let started = std::time::Instant::now();
    let fresh = started.elapsed().as_millis() < 5;
    !envelope.is_empty() && fresh
}
