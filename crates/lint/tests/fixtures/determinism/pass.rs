use std::collections::BTreeMap;

// A HashMap mentioned in a comment is fine; so is one in a string.
pub struct Tally {
    votes: BTreeMap<u32, bool>,
}

pub fn describe() -> &'static str {
    "replicas never use HashMap iteration order"
}
