// lint:allow(determinism): iteration order never observed; keyed lookups only
use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u64, Vec<u8>>, // lint:allow(determinism): same as above
}
