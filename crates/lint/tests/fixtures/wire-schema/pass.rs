//! Pass: a round-tripping codec — every encode op has a matching decode
//! op, in order, with agreeing operand names.

pub const WIRE_FORMAT_VERSION: u32 = 1;

impl Wire for Ping {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        put_bytes(buf, &self.data);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = u64::decode(r)?;
        let data = r.bytes()?.to_vec();
        Ok(Ping { seq, data })
    }
}
