//! Trigger: `Ping` writes `seq` then `flag`, but reads them in the other
//! order — a silent wire corruption the schema extractor must refuse.

pub const WIRE_FORMAT_VERSION: u32 = 1;

impl Wire for Ping {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.flag.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let flag = bool::decode(r)?;
        let seq = u64::decode(r)?;
        Ok(Ping { seq, flag })
    }
}
