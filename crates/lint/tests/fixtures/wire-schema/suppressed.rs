//! Suppressed: the same swap as the trigger, with a `lint:allow` at the
//! encode side — the asymmetry finding's primary anchor.

pub const WIRE_FORMAT_VERSION: u32 = 1;

impl Wire for Ping {
    // lint:allow(wire-schema): transitional double-read shim while peers upgrade, tracked for removal with the v2 format
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.flag.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let flag = bool::decode(r)?;
        let seq = u64::decode(r)?;
        Ok(Ping { seq, flag })
    }
}
