//! Mini wire-body registry shared by the verify-before-mutate fixtures.
//! Variant names are real rows of the obligation table, so the registry
//! completeness check stays silent; the interesting behavior lives in the
//! handler fixtures analyzed alongside this file.

pub enum Body {
    CbEcho(SigShare),
    AcEntry { round: u64, entry: Entry },
}
