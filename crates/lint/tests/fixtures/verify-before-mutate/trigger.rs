//! Trigger: the CbEcho arm files the echo share *before* checking it —
//! the forged-share flood the verify-before-mutate rule exists to catch.
//! The AcEntry arm (via `on_entry`) is compliant and must stay silent.

impl Channel {
    fn handle_envelope(&mut self, from: PartyId, body: &Body) {
        match body {
            Body::CbEcho(share) => {
                self.echoes.insert(from, share.clone());
                if !self.verify_share(share) {
                    self.echoes.remove(&from);
                }
            }
            Body::AcEntry { round, entry } => self.on_entry(from, *round, entry),
        }
    }

    fn on_entry(&mut self, from: PartyId, round: u64, entry: &Entry) {
        if !self.verify_party_sig_cached(from, entry) {
            return;
        }
        self.entries.entry(round).or_default().push(entry.clone());
    }
}
