//! Pass: both arms discharge their obligation before touching state —
//! CbEcho verifies inline, AcEntry verifies inside the called handler.

impl Channel {
    fn handle_envelope(&mut self, from: PartyId, body: &Body) {
        match body {
            Body::CbEcho(share) => {
                if !self.verify_share(share) {
                    return;
                }
                self.echoes.insert(from, share.clone());
            }
            Body::AcEntry { round, entry } => self.on_entry(from, *round, entry),
        }
    }

    fn on_entry(&mut self, from: PartyId, round: u64, entry: &Entry) {
        if !self.verify_party_sig_cached(from, entry) {
            return;
        }
        self.entries.entry(round).or_default().push(entry.clone());
    }
}
