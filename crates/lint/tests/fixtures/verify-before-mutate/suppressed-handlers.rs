//! The second file of the suppressed pair: the mutation evidence the
//! cross-file finding cites in its `related` locations.

impl Channel {
    fn on_echo(&mut self, from: PartyId, share: &SigShare) {
        self.pending.insert(from, share.clone());
        if !self.verify_share(share) {
            self.pending.remove(&from);
        }
    }
}
