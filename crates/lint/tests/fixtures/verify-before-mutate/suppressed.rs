//! Suppressed: the dispatch arm hands the share to `on_echo`, which lives
//! in *another file* (`suppressed-handlers.rs`) and parks it before
//! verifying. The `lint:allow` at the arm — the finding's primary
//! location — must cover the whole cross-file finding.

impl Channel {
    fn handle_envelope(&mut self, from: PartyId, body: &Body) {
        match body {
            // lint:allow(verify-before-mutate): echoes are parked pre-verification and evicted on failure, bounded by one slot per sender
            Body::CbEcho(share) => self.on_echo(from, share),
        }
    }
}
