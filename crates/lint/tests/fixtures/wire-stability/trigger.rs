impl Wire for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(3);
        buf.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            3 => Ok(Frame::Data),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
    fn code(&self) -> u8 {
        match self {
            Frame::Data => 7,
        }
    }
}
