const TAG_DATA: u8 = 3;

impl Wire for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(TAG_DATA);
        put_len(buf, self.payload.len());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_DATA => Ok(Frame::Data),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn truncation_fixture_is_exempt() {
        let mut buf = Vec::new();
        buf.push(3);
        let n = buf.len() as u32;
        assert_eq!(n, 1);
    }
}
