impl Probe {
    fn poison(buf: &mut Vec<u8>) {
        buf.push(9); // lint:allow(wire-stability): deliberately malformed probe frame
    }
}
