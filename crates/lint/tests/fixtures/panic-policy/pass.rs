use sintra_core::invariant::OrInvariant;

fn drain(queue: &mut Vec<u8>, shared: &Mutex<u8>) -> u8 {
    let head = queue.pop().or_invariant("queue drained under us");
    let guard = shared.lock().unwrap();
    invariant!(*guard > 0, "guard must be positive, got {}", *guard);
    head
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
