// A crypto-worker loop that unwraps: if the channel side dies first, the
// worker panics without a flight-recorder dump and its in-flight admission
// sequence number is never re-injected, wedging the server loop's reorder
// buffer. Fed through a `pipeline` virtual path *outside* crates/net to
// prove the panic policy follows the module.
fn worker_loop(rx: &Receiver<Job>, tx: &Sender<Verdict>) {
    loop {
        let job = rx.recv().unwrap();
        tx.send(verify(job)).expect("loop alive");
    }
}
