fn drain(queue: &mut Vec<u8>, map: &Table) -> u8 {
    let head = queue.pop().unwrap();
    let row = map.get(&head).expect("row exists");
    if *row == 0 {
        panic!("zero row");
    }
    *row
}
