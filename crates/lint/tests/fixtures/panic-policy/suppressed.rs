fn sanctioned() -> ! {
    // lint:allow(panic-policy): definitional — the one sanctioned panic site
    panic!("protocol invariant violated");
}
