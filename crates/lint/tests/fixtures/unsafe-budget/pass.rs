// The word unsafe in a comment is fine; the code below has none.
pub fn reinterpret(bytes: [u8; 4]) -> u32 {
    u32::from_be_bytes(bytes)
}
