pub fn reinterpret(bytes: &[u8]) -> u32 {
    // lint:allow(unsafe-budget): measured hot path; bounds checked by caller
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast()) }
}
