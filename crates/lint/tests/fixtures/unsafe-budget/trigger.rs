pub fn reinterpret(bytes: &[u8]) -> u32 {
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast()) }
}
