impl Channel {
    fn close_threshold(&self) -> usize {
        self.ctx.n() - self.ctx.t()
    }

    fn echo_bound(&self) -> usize {
        let n = self.ctx.n();
        let t = self.ctx.t();
        n - t + 1
    }
}
