impl Channel {
    fn parked_bound(&self) -> usize {
        // lint:allow(quorum-arithmetic): buffer sizing, not a protocol threshold
        2 * self.ctx.n()
    }
}
