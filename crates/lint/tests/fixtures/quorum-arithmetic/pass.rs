impl Channel {
    fn close_threshold(&self) -> usize {
        self.ctx.n_minus_t()
    }

    fn complaint_bound(&self) -> usize {
        self.ctx.one_honest()
    }

    fn leader(&self, epoch: u64) -> usize {
        (epoch as usize) % self.ctx.n()
    }

    fn everyone(&self) -> impl Iterator<Item = usize> {
        0..self.ctx.n()
    }
}
