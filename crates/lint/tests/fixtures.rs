//! Self-tests for every rule: each has a `trigger` fixture that must
//! fire, a `pass` fixture that must stay silent, and a `suppressed`
//! fixture whose `lint:allow(<rule>): <reason>` directives must cover
//! every finding. Fixtures are plain text fed through a virtual path
//! that puts them in the rule's scope — they are never compiled.

use std::fs;
use std::path::Path;

use sintra_lint::{analyze_source, rules, Finding};

/// (rule, virtual path that places the fixture in the rule's scope)
const CASES: &[(&str, &str)] = &[
    (rules::DETERMINISM, "crates/core/src/fixture.rs"),
    (rules::QUORUM, "crates/core/src/channel/fixture.rs"),
    (rules::PANIC_POLICY, "crates/net/src/link/fixture.rs"),
    (rules::WIRE_STABILITY, "crates/proto/src/wire.rs"),
    (rules::UNSAFE_BUDGET, "crates/telemetry/src/fixture.rs"),
];

fn fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(which);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn open(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.suppressed.is_none()).collect()
}

#[test]
fn trigger_fixtures_fire_their_rule() {
    for (rule, vpath) in CASES {
        let findings = analyze_source(vpath, &fixture(rule, "trigger.rs"));
        let open = open(&findings);
        assert!(!open.is_empty(), "{rule}: trigger fixture did not fire");
        for f in &open {
            assert_eq!(
                f.rule, *rule,
                "{rule}: trigger fixture fired foreign rule: {f:?}"
            );
        }
    }
}

#[test]
fn pass_fixtures_stay_silent() {
    for (rule, vpath) in CASES {
        let findings = analyze_source(vpath, &fixture(rule, "pass.rs"));
        assert!(
            findings.is_empty(),
            "{rule}: pass fixture produced findings: {findings:#?}"
        );
    }
}

#[test]
fn suppressed_fixtures_are_fully_covered() {
    for (rule, vpath) in CASES {
        let findings = analyze_source(vpath, &fixture(rule, "suppressed.rs"));
        assert!(
            !findings.is_empty(),
            "{rule}: suppressed fixture should still produce (covered) findings"
        );
        for f in &findings {
            let reason = f
                .suppressed
                .as_deref()
                .unwrap_or_else(|| panic!("{rule}: finding escaped suppression: {f:?}"));
            assert!(!reason.is_empty(), "{rule}: suppression reason lost");
        }
    }
}

#[test]
fn wire_fixture_also_fires_under_link_paths() {
    // The wire-stability scope covers wire.rs, message.rs and the link
    // layer; spot-check the path scoping beyond the canonical CASES entry.
    let src = fixture(rules::WIRE_STABILITY, "trigger.rs");
    for vpath in [
        "crates/core/src/message.rs",
        "crates/net/src/link/fixture.rs",
    ] {
        let findings = analyze_source(vpath, &src);
        assert!(
            findings.iter().any(|f| f.rule == rules::WIRE_STABILITY),
            "wire-stability silent under {vpath}"
        );
    }
    // Out of scope, the same text is clean.
    let elsewhere = analyze_source("crates/telemetry/src/report.rs", &src);
    assert!(
        !elsewhere.iter().any(|f| f.rule == rules::WIRE_STABILITY),
        "wire-stability fired outside its scope"
    );
}

#[test]
fn verify_stage_modules_carry_determinism_anywhere() {
    // The staged pipeline's verify stage must be a pure function of the
    // envelope bytes, so the determinism bans (wall clock included) follow
    // `preverify` modules out of crates/core.
    let src = fixture(rules::DETERMINISM, "verify-stage.rs");
    for vpath in [
        "crates/net/src/preverify.rs",
        "crates/pipeline/src/preverify/batch.rs",
    ] {
        assert!(
            analyze_source(vpath, &src)
                .iter()
                .any(|f| f.rule == rules::DETERMINISM),
            "determinism silent for verify stage under {vpath}"
        );
    }
    // The same text elsewhere in a non-core crate is out of scope.
    assert!(
        analyze_source("crates/telemetry/src/report.rs", &src).is_empty(),
        "determinism fired outside core/verify-stage scope"
    );
}

#[test]
fn pipeline_modules_carry_panic_policy_anywhere() {
    // A worker that dies on a bare unwrap wedges the admission reorder
    // buffer, so the panic policy follows `pipeline` modules out of
    // crates/net.
    let src = fixture(rules::PANIC_POLICY, "pipeline-worker.rs");
    for vpath in [
        "crates/testbed/src/pipeline.rs",
        "crates/runtime/src/pipeline/worker.rs",
    ] {
        assert!(
            analyze_source(vpath, &src)
                .iter()
                .any(|f| f.rule == rules::PANIC_POLICY),
            "panic-policy silent for pipeline module under {vpath}"
        );
    }
    assert!(
        analyze_source("crates/telemetry/src/report.rs", &src).is_empty(),
        "panic-policy fired outside core/net/pipeline scope"
    );
    // The worker loop's metering clock is sanctioned: determinism binds to
    // the verify stage (`preverify`), not to pipeline worker modules.
    let metering = "fn meter() { let t = std::time::Instant::now(); drop(t); }\n";
    assert!(
        analyze_source("crates/net/src/pipeline.rs", metering).is_empty(),
        "determinism must not ban the worker loop's metering Instant"
    );
}

#[test]
fn core_rules_do_not_fire_outside_core() {
    let det = fixture(rules::DETERMINISM, "trigger.rs");
    let quo = fixture(rules::QUORUM, "trigger.rs");
    for vpath in ["crates/net/src/server.rs", "crates/telemetry/src/lib.rs"] {
        assert!(
            analyze_source(vpath, &det)
                .iter()
                .all(|f| f.rule != rules::DETERMINISM),
            "determinism fired under {vpath}"
        );
        assert!(
            analyze_source(vpath, &quo)
                .iter()
                .all(|f| f.rule != rules::QUORUM),
            "quorum-arithmetic fired under {vpath}"
        );
    }
}
