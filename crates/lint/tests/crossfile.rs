//! Cross-file rule tests: multi-file fixtures for `verify-before-mutate`
//! and `wire-schema`, the golden byte-identity check, the obligation
//! table ↔ `Body` registry equality check, and the two mutation drills
//! from the acceptance checklist (drop a verifier call / reorder an
//! encoded field — the lint must fail either way).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use sintra_lint::{
    analyze_sources, collect_workspace_files, extract_wire_schema, ir, obligations, render_json,
    rules, schema, Finding,
};

/// Virtual paths that place the fixtures in the rules' scopes.
const MSG: &str = "crates/core/src/message.rs";
const HANDLER: &str = "crates/core/src/channel/fixture.rs";
const HANDLER2: &str = "crates/core/src/channel/handlers.rs";
const WIRE: &str = "crates/core/src/wire.rs";

fn fixture(dir: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(which);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn vb_files(which: &str) -> Vec<(String, String)> {
    vec![
        (
            MSG.to_string(),
            fixture("verify-before-mutate", "message.rs"),
        ),
        (HANDLER.to_string(), fixture("verify-before-mutate", which)),
    ]
}

fn wire_files(which: &str) -> Vec<(String, String)> {
    vec![(WIRE.to_string(), fixture("wire-schema", which))]
}

fn open<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn verify_before_mutate_trigger_fires() {
    let findings = analyze_sources(&vb_files("trigger.rs"), None);
    let open = open(&findings, rules::VERIFY_MUTATE);
    assert_eq!(
        open.len(),
        1,
        "expected exactly the CbEcho violation: {findings:#?}"
    );
    let f = open[0];
    assert_eq!(f.path, HANDLER);
    assert!(
        f.message.contains("CbEcho"),
        "finding names the wrong variant: {f:?}"
    );
    // The compliant AcEntry arm must stay silent.
    assert!(
        !findings.iter().any(|f| f.message.contains("AcEntry")),
        "compliant arm produced noise: {findings:#?}"
    );
}

#[test]
fn verify_before_mutate_pass_is_silent() {
    let findings = analyze_sources(&vb_files("pass.rs"), None);
    assert!(
        findings.is_empty(),
        "pass fixture produced findings: {findings:#?}"
    );
}

#[test]
fn cross_file_finding_is_suppressed_at_handler_and_cites_both_files() {
    // The arm lives in fixture.rs, the premature mutation in handlers.rs:
    // the finding spans two files, the `lint:allow` at the arm (primary
    // location) covers it, and the JSON report cites both locations.
    let mut files = vb_files("suppressed.rs");
    files.push((
        HANDLER2.to_string(),
        fixture("verify-before-mutate", "suppressed-handlers.rs"),
    ));
    let findings = analyze_sources(&files, None);
    let f = findings
        .iter()
        .find(|f| f.rule == rules::VERIFY_MUTATE)
        .unwrap_or_else(|| panic!("cross-file finding missing: {findings:#?}"));
    assert_eq!(f.path, HANDLER, "primary location must be the dispatch arm");
    let reason = f
        .suppressed
        .as_deref()
        .unwrap_or_else(|| panic!("lint:allow at the arm did not suppress: {f:?}"));
    assert!(reason.contains("parked pre-verification"));
    assert!(
        f.related.iter().any(|r| r.path == HANDLER2),
        "related evidence must cite the mutation's file: {f:?}"
    );
    let json = render_json(&findings, &BTreeSet::new());
    assert!(json.contains(HANDLER) && json.contains(HANDLER2));
    // Nothing else may leak out of the fixture set.
    assert!(
        findings.iter().all(|f| f.suppressed.is_some()),
        "unsuppressed noise: {findings:#?}"
    );
}

#[test]
fn wire_schema_trigger_fires() {
    let findings = analyze_sources(&wire_files("trigger.rs"), None);
    let open = open(&findings, rules::WIRE_SCHEMA);
    assert!(!open.is_empty(), "swapped fields went unnoticed");
    assert!(
        open.iter().all(|f| f.path == WIRE),
        "finding anchored off the impl: {open:#?}"
    );
}

#[test]
fn wire_schema_pass_is_silent_and_matches_its_own_golden() {
    let files = wire_files("pass.rs");
    let schema_json = extract_wire_schema(&files);
    assert!(schema_json.contains("\"Ping\""), "extraction came up empty");
    let findings = analyze_sources(&files, Some(&schema_json));
    assert!(
        findings.is_empty(),
        "pass fixture produced findings: {findings:#?}"
    );
}

#[test]
fn wire_schema_suppression_covers_the_encode_anchor() {
    let findings = analyze_sources(&wire_files("suppressed.rs"), None);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::WIRE_SCHEMA)
        .collect();
    assert!(!hits.is_empty(), "suppressed fixture should still find");
    for f in hits {
        assert!(
            f.suppressed.is_some(),
            "asymmetry escaped the lint:allow: {f:?}"
        );
    }
}

#[test]
fn golden_drift_and_missing_version_bump_are_findings() {
    let files = wire_files("pass.rs");
    let schema_json = extract_wire_schema(&files);

    // Any difference from the committed golden is drift.
    let drift = analyze_sources(&files, Some(""));
    assert!(
        drift
            .iter()
            .any(|f| f.rule == rules::WIRE_SCHEMA && f.path == "WIRE_SCHEMA.json"),
        "drift against an empty golden went unnoticed: {drift:#?}"
    );

    // A body change with an unchanged wire_format_version is a second,
    // sharper finding: the bump gate.
    let stale = schema_json.replace("\"enc=seq\"", "\"enc=old_seq\"");
    assert_ne!(stale, schema_json, "mutation failed to apply");
    let findings = analyze_sources(&files, Some(&stale));
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rules::WIRE_SCHEMA && f.message.contains("WIRE_FORMAT_VERSION bump")),
        "version-bump gate silent: {findings:#?}"
    );
    assert_eq!(
        schema::schema_version(&schema_json),
        Some(1),
        "fixture schema must carry version 1"
    );
}

#[test]
fn committed_wire_schema_golden_is_byte_identical() {
    let root = workspace_root();
    let files = collect_workspace_files(&root).expect("walking workspace");
    let schema_json = extract_wire_schema(&files);
    let golden = fs::read_to_string(root.join("WIRE_SCHEMA.json"))
        .expect("WIRE_SCHEMA.json golden must be committed");
    assert_eq!(
        schema_json, golden,
        "WIRE_SCHEMA.json is stale: regenerate with \
         `cargo run -p sintra-lint -- --write-wire-schema` (and bump \
         WIRE_FORMAT_VERSION if the wire format changed)"
    );
}

#[test]
fn obligation_table_matches_body_registry_exactly() {
    let root = workspace_root();
    let files = collect_workspace_files(&root).expect("walking workspace");
    let workspace = ir::WorkspaceIr::build(&files);
    let (_, body) = workspace.body_enum().expect("enum Body in message.rs");
    let registry: BTreeSet<&str> = body.variants.iter().map(|v| v.name.as_str()).collect();
    let table: BTreeSet<&str> = obligations::OBLIGATIONS.iter().map(|o| o.variant).collect();
    assert_eq!(
        registry, table,
        "obligation table and Body enum disagree: every wire body needs \
         exactly one obligation row"
    );
    assert_eq!(
        obligations::OBLIGATIONS.len(),
        body.variants.len(),
        "duplicate rows in the obligation table"
    );
}

#[test]
fn mutation_dropping_a_verifier_call_fails_the_lint() {
    // Acceptance drill: delete (rename) the `verify_party_sig_cached`
    // call in the atomic channel and the lint must go red.
    let root = workspace_root();
    let mut files = collect_workspace_files(&root).expect("walking workspace");
    let atomic = files
        .iter_mut()
        .find(|(p, _)| p.ends_with("channel/atomic.rs"))
        .expect("atomic.rs in workspace");
    assert!(atomic.1.contains("verify_party_sig_cached"));
    atomic.1 = atomic
        .1
        .replace("verify_party_sig_cached", "skip_party_sig_check");
    let findings = analyze_sources(&files, None);
    assert!(
        findings.iter().any(|f| {
            f.rule == rules::VERIFY_MUTATE
                && f.path.ends_with("channel/atomic.rs")
                && f.suppressed.is_none()
                && f.message.contains("AcEntry")
        }),
        "dropping the verifier went unnoticed: {findings:#?}"
    );
}

#[test]
fn mutation_reordering_an_encoded_field_fails_the_lint() {
    // Acceptance drill: swap two encoded fields of one Body variant and
    // the lint must go red.
    let root = workspace_root();
    let mut files = collect_workspace_files(&root).expect("walking workspace");
    let msg = files
        .iter_mut()
        .find(|(p, _)| p.ends_with("core/src/message.rs"))
        .expect("message.rs in workspace");
    let orig = "buf.push(TAG_BA_COIN_SHARE);\n                round.encode(buf);\n                share.encode(buf);";
    let swapped = "buf.push(TAG_BA_COIN_SHARE);\n                share.encode(buf);\n                round.encode(buf);";
    assert!(
        msg.1.contains(orig),
        "BaCoinShare encode arm changed shape; update this mutation"
    );
    msg.1 = msg.1.replace(orig, swapped);
    let findings = analyze_sources(&files, None);
    assert!(
        findings.iter().any(|f| {
            f.rule == rules::WIRE_SCHEMA
                && f.path.ends_with("core/src/message.rs")
                && f.suppressed.is_none()
                && f.message.contains("BaCoinShare")
        }),
        "field reorder went unnoticed: {findings:#?}"
    );
}
