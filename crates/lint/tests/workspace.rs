//! The gate this crate exists for: the workspace itself must be clean,
//! and known-bad mutations of real files must fail.

use std::path::{Path, PathBuf};

use sintra_lint::{analyze_source, analyze_workspace, parse_baseline, rules};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_open_findings() {
    let findings = analyze_workspace(&repo_root()).expect("walk workspace");
    let open: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        open.is_empty(),
        "the tree must lint clean; open findings:\n{open:#?}"
    );
}

#[test]
fn committed_baseline_is_empty() {
    let path = repo_root().join("crates/lint/baseline.json");
    let text = std::fs::read_to_string(&path).expect("baseline.json is committed");
    let set = parse_baseline(&text).expect("baseline parses");
    assert!(set.is_empty(), "baseline must stay empty: {set:?}");
}

#[test]
fn reintroducing_hashmap_in_multiplex_fails() {
    // The multiplex table was deliberately converted to BTreeMap so that
    // per-channel iteration is replica-deterministic; undoing that must
    // not pass review silently.
    let path = repo_root().join("crates/core/src/channel/multiplex.rs");
    let src = std::fs::read_to_string(&path).expect("read multiplex.rs");
    assert!(src.contains("BTreeMap"), "multiplex should use BTreeMap");

    let clean = analyze_source("crates/core/src/channel/multiplex.rs", &src);
    assert!(clean.iter().all(|f| f.suppressed.is_some()), "{clean:#?}");

    let mutated = src.replace("BTreeMap", "HashMap");
    let findings = analyze_source("crates/core/src/channel/multiplex.rs", &mutated);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rules::DETERMINISM && f.suppressed.is_none()),
        "HashMap reintroduction went undetected"
    );
}

#[test]
fn reintroducing_inline_quorum_arithmetic_fails() {
    for snippet in [
        "fn bound(&self) -> usize { self.ctx.n() - self.ctx.t() }",
        "fn bound(&self) -> usize { self.ctx.t() + 1 }",
        "fn bound(n: usize, t: usize) -> usize { n - t }",
        "fn ready(&self) -> usize { 2 * self.ctx.t() + 1 }",
    ] {
        let findings = analyze_source("crates/core/src/channel/atomic.rs", snippet);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == rules::QUORUM && f.suppressed.is_none()),
            "inline threshold went undetected: {snippet}"
        );
    }
}

#[test]
fn bare_panics_in_link_code_fail() {
    for snippet in [
        "fn f(q: &mut Vec<u8>) -> u8 { q.pop().unwrap() }",
        "fn f(q: &mut Vec<u8>) -> u8 { q.pop().expect(\"nonempty\") }",
        "fn f() { panic!(\"boom\"); }",
    ] {
        let findings = analyze_source("crates/net/src/link/reliable.rs", snippet);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == rules::PANIC_POLICY && f.suppressed.is_none()),
            "bare panic path went undetected: {snippet}"
        );
    }
}

#[test]
fn raw_wire_tags_fail() {
    for snippet in [
        "fn encode(&self, buf: &mut Vec<u8>) { buf.push(17); }",
        "fn len(&self, d: &[u8]) -> u32 { d.len() as u32 }",
    ] {
        let findings = analyze_source("crates/core/src/wire.rs", snippet);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == rules::WIRE_STABILITY && f.suppressed.is_none()),
            "wire regression went undetected: {snippet}"
        );
    }
}
