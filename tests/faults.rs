//! Failure-injection integration tests: crashes, silence, equivocation,
//! partitions and message tampering — safety must hold in every case,
//! and liveness whenever at most `t` parties misbehave.

mod common;

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use common::{delivered_data, group_keys, lan_sim, wan_sim};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::sim::byzantine::{ByzantineActor, Reflector, Silent};
use sintra::runtime::sim::{Fault, LinkDecision};
use sintra::runtime::tcp::{TcpConfig, TcpGroup};
use sintra::runtime::{ObservabilityConfig, PartyHandle};
use sintra::telemetry::parse_json;
use sintra::testbed::inspect::report;
use sintra::testbed::trace_export::validate_dump;
use sintra::{PartyId, ProtocolId, Recipient};

/// Runs `f` on a worker thread and fails the test if it neither
/// finishes nor panics within `secs` — a hard wall-clock bound so a
/// wedged socket cannot hang the suite.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Disconnected) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Timeout) => panic!("test exceeded {secs}s wall-clock deadline"),
    }
}

/// A fresh per-test dump directory under the system temp dir.
fn dump_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sintra-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");
    dir
}

fn dump_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read dump dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .starts_with("sintra-dump-")
        })
        .collect();
    files.sort();
    files
}

fn open_atomic(sim: &mut sintra::runtime::sim::Simulation, pid: &ProtocolId, skip: &[usize]) {
    for p in 0..sim.n() {
        if !skip.contains(&p) {
            sim.node_mut(p)
                .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
    }
}

#[test]
fn atomic_channel_with_crash_at_various_times() {
    for crash_at in [0u64, 200_000, 1_000_000] {
        let pid = ProtocolId::new("f-crash");
        let mut sim = lan_sim(4, 1, 2000 + crash_at);
        open_atomic(&mut sim, &pid, &[]);
        sim.set_fault(3, Fault::Crash { at_us: crash_at });
        for p in 0..3 {
            let spid = pid.clone();
            sim.schedule(0, p, move |node, out| {
                node.channel_send(&spid, format!("m{p}").into_bytes(), out);
            });
        }
        sim.run();
        let reference = delivered_data(&sim, 0, &pid);
        assert_eq!(
            reference.len(),
            3,
            "crash@{crash_at}: all survivors' payloads"
        );
        for p in 1..3 {
            assert_eq!(
                delivered_data(&sim, p, &pid),
                reference,
                "crash@{crash_at} party {p}"
            );
        }
    }
}

#[test]
fn atomic_channel_with_mute_party() {
    let pid = ProtocolId::new("f-mute");
    let mut sim = lan_sim(4, 1, 2100);
    open_atomic(&mut sim, &pid, &[]);
    sim.set_fault(1, Fault::Mute);
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&spid, b"heard".to_vec(), out);
    });
    sim.run();
    for p in [0usize, 2, 3] {
        assert_eq!(
            delivered_data(&sim, p, &pid),
            vec![b"heard".to_vec()],
            "party {p}"
        );
    }
}

#[test]
fn atomic_channel_with_reflector() {
    // A Byzantine party that replays every message it receives back to
    // everyone. The MAC layer is bypassed in the sim, but protocol-level
    // sender checks must drop the reflections (wrong `from`).
    let pid = ProtocolId::new("f-reflect");
    let mut sim = lan_sim(4, 1, 2200);
    open_atomic(&mut sim, &pid, &[3]);
    sim.set_byzantine(3, Box::new(Reflector::default()));
    for p in 0..3 {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            node.channel_send(&spid, format!("r{p}").into_bytes(), out);
        });
    }
    sim.run();
    let reference = delivered_data(&sim, 0, &pid);
    assert_eq!(reference.len(), 3);
    for p in 1..3 {
        assert_eq!(delivered_data(&sim, p, &pid), reference, "party {p}");
    }
}

/// A Byzantine actor that floods honest parties with structurally valid
/// but unsigned/forged atomic-channel entries.
struct EntryForger {
    pid: ProtocolId,
    n: usize,
}

impl ByzantineActor for EntryForger {
    fn on_message(
        &mut self,
        _from: PartyId,
        _env: &sintra::protocols::message::Envelope,
        _clock: u64,
    ) -> Vec<(Recipient, sintra::protocols::message::Envelope)> {
        Vec::new()
    }

    fn on_start(&mut self, _clock: u64) -> Vec<(Recipient, sintra::protocols::message::Envelope)> {
        use sintra::bigint::Ubig;
        use sintra::protocols::message::{Body, Entry, Envelope, Payload, PayloadKind};
        (0..self.n)
            .map(|origin| {
                // Forged signature bytes: must be rejected by everyone.
                let entry = Entry {
                    payload: Payload {
                        origin: PartyId(origin),
                        seq: 0,
                        kind: PayloadKind::App,
                        data: b"forged".to_vec(),
                    },
                    signer: PartyId(origin),
                    sig: sintra::crypto::rsa::RsaSignature(Ubig::from(12345u64)),
                };
                (
                    Recipient::All,
                    Envelope {
                        pid: self.pid.clone(),
                        send_seq: 0,
                        body: Body::AcEntry { round: 0, entry },
                    },
                )
            })
            .collect()
    }
}

#[test]
fn forged_entries_never_delivered() {
    let pid = ProtocolId::new("f-forge");
    let mut sim = lan_sim(4, 1, 2300);
    open_atomic(&mut sim, &pid, &[2]);
    sim.set_byzantine(
        2,
        Box::new(EntryForger {
            pid: pid.clone(),
            n: 4,
        }),
    );
    sim.schedule(0, 2, |_, _| {}); // trigger the forger
    let spid = pid.clone();
    sim.schedule(10_000, 0, move |node, out| {
        node.channel_send(&spid, b"legit".to_vec(), out);
    });
    sim.run();
    for p in [0usize, 1, 3] {
        let data = delivered_data(&sim, p, &pid);
        assert_eq!(
            data,
            vec![b"legit".to_vec()],
            "party {p}: forgeries blocked"
        );
    }
}

#[test]
fn partition_heals_and_channel_catches_up() {
    let pid = ProtocolId::new("f-part");
    let mut sim = wan_sim(4, 1, 2400);
    open_atomic(&mut sim, &pid, &[]);
    // {0,1} vs {2,3} split for the first 3 virtual seconds: no quorum on
    // either side, so nothing can be delivered until the heal.
    sim.set_link_filter(|from, to, t| {
        let side = |p: usize| p < 2;
        if side(from) != side(to) && t < 3_000_000 {
            LinkDecision::DelayUntil(3_000_000)
        } else {
            LinkDecision::Deliver
        }
    });
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&spid, b"split-brain-proof".to_vec(), out);
    });
    sim.run();
    for p in 0..4 {
        let deliveries = sim.channel_deliveries(p, &pid);
        assert_eq!(deliveries.len(), 1, "party {p}");
        assert!(
            deliveries[0].0 >= 3_000_000,
            "party {p}: no delivery during the minority partition"
        );
    }
}

#[test]
fn safety_with_t_byzantine_and_slow_network() {
    // The adversarial worst case the model allows: t Byzantine parties
    // (silent flavor) and extreme jitter. Liveness and agreement must
    // both survive.
    let pid = ProtocolId::new("f-max");
    let mut sim = wan_sim(7, 2, 2500);
    open_atomic(&mut sim, &pid, &[5, 6]);
    sim.set_byzantine(5, Box::new(Silent));
    sim.set_byzantine(6, Box::new(Silent));
    for p in 0..5 {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            node.channel_send(&spid, format!("h{p}").into_bytes(), out);
        });
    }
    sim.run();
    let reference = delivered_data(&sim, 0, &pid);
    assert_eq!(reference.len(), 5, "all honest payloads delivered");
    for p in 1..5 {
        assert_eq!(delivered_data(&sim, p, &pid), reference, "party {p}");
    }
}

#[test]
fn stall_past_fault_budget_produces_dump_naming_the_instance() {
    // Crashing two of four servers exceeds the t = 1 budget: the
    // survivors cannot assemble any n - t quorum and wedge. The stall
    // detector must notice the quiet period and write a schema-valid
    // dump that names the stuck channel and the quorum it is missing.
    with_deadline(180, || {
        let dir = dump_dir("stall-dump");
        let config = TcpConfig {
            observability: Some(ObservabilityConfig {
                quiet: Duration::from_millis(300),
                dump_dir: dir.clone(),
                ..ObservabilityConfig::default()
            }),
            ..TcpConfig::default()
        };
        let (group, handles) =
            TcpGroup::spawn_with(group_keys(4, 1, 2600), config, None).expect("bind loopback");
        let pid = ProtocolId::new("f-stall");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        for h in &handles[2..] {
            h.shutdown_server();
            h.sever_links();
        }
        handles[0].send(&pid, b"wedged".to_vec());

        let path = dir.join("sintra-dump-0-stall.json");
        while !path.exists() {
            std::thread::sleep(Duration::from_millis(25));
        }
        // The write is not atomic; retry until the file parses whole.
        let dump = loop {
            if let Ok(dump) = parse_json(&std::fs::read_to_string(&path).expect("read dump")) {
                break dump;
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        group.shutdown();

        validate_dump(&dump).expect("dump is schema-valid");
        let analysis = report(&dump);
        assert!(
            analysis.contains("f-stall"),
            "names the instance: {analysis}"
        );
        assert!(
            analysis.contains("waiting for round entries"),
            "names the missing quorum: {analysis}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn healthy_run_produces_no_dumps() {
    // No false positives: a group that delivers everything and then
    // sits idle has no pending work, so the stall detector must stay
    // quiet even long after the quiet period has elapsed.
    with_deadline(180, || {
        let dir = dump_dir("no-dump");
        let quiet = Duration::from_millis(400);
        let config = TcpConfig {
            observability: Some(ObservabilityConfig {
                quiet,
                dump_dir: dir.clone(),
                ..ObservabilityConfig::default()
            }),
            ..TcpConfig::default()
        };
        let (group, mut handles) =
            TcpGroup::spawn_with(group_keys(4, 1, 2700), config, None).expect("bind loopback");
        let pid = ProtocolId::new("f-healthy");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        for (i, h) in handles.iter().enumerate() {
            h.send(&pid, format!("ok{i}").into_bytes());
        }
        for h in handles.iter_mut() {
            for _ in 0..4 {
                h.receive(&pid).expect("healthy delivery");
            }
        }
        // Idle well past the quiet period: ample opportunity for a
        // false positive before teardown.
        std::thread::sleep(quiet * 3);
        group.shutdown();
        assert_eq!(
            dump_files(&dir),
            Vec::<std::path::PathBuf>::new(),
            "healthy run wrote a dump"
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}
