//! Property tests for the streaming trace sink's causal integrity.
//!
//! The profiler's critical-path walk is only sound if the causal chain
//! it follows is closed: every event that names a parent `(sender,
//! send_seq)` must find that send in the merged multi-party stream.
//! These tests run real atomic-broadcast workloads — randomized command
//! counts, submitting parties, and key seeds — over both runtimes with
//! streaming traces on, then merge the per-party `.jsonl` segments and
//! assert that every non-anchor event resolves its parent (anchors are
//! local commands and timers, which legitimately carry no cause).
//!
//! Nothing may be dropped either: a lossy capture would make dangling
//! parents indistinguishable from broken stamping, so the sink gets a
//! buffer sized for the whole run and the tests assert `dropped == 0`.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use common::group_keys;
use proptest::prelude::*;
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::tcp::{TcpConfig, TcpGroup};
use sintra::runtime::threaded::ThreadedGroup;
use sintra::runtime::{ObservabilityConfig, PartyHandle};
use sintra::telemetry::TraceStreamConfig;
use sintra::testbed::profile::{causal_resolution, find_trace_files, merge_streams, MergedTrace};
use sintra::ProtocolId;

/// Runs `f` on a worker thread and fails the test if it neither
/// finishes nor panics within `secs` (same guard as the TCP suite).
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Disconnected) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Timeout) => panic!("test exceeded {secs}s wall-clock deadline"),
    }
}

/// A fresh, collision-free trace directory for one run.
fn trace_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "sintra-causal-{tag}-{}-{unique}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create trace dir");
    dir
}

/// Observability with the streaming sink on and a buffer large enough
/// that a short run can never overflow it.
fn traced_observability(dir: &std::path::Path) -> ObservabilityConfig {
    ObservabilityConfig {
        trace: Some(TraceStreamConfig {
            buffer_events: 65_536,
            ..TraceStreamConfig::into_dir(dir)
        }),
        ..ObservabilityConfig::default()
    }
}

/// Submits `commands` through rotating parties and drives every replica
/// until each has delivered all of them.
fn drive<H: PartyHandle>(handles: &mut [H], channel: &ProtocolId, commands: usize) {
    for h in handles.iter() {
        h.create_atomic_channel(channel.clone(), AtomicChannelConfig::default());
    }
    for c in 0..commands {
        handles[c % handles.len()].send(channel, format!("cmd-{c}").into_bytes());
    }
    for h in handles.iter_mut() {
        for _ in 0..commands {
            assert!(h.receive(channel).is_some(), "replica lost a delivery");
        }
    }
}

/// Merges the run's segments and asserts the causal-closure property.
fn assert_causally_closed(dir: &std::path::Path, parties: usize) -> MergedTrace {
    let files = find_trace_files(dir).expect("list trace files");
    assert_eq!(files.len(), parties, "one segment per party expected");
    let trace = merge_streams(&files).expect("merge streams");
    assert_eq!(
        trace.dropped, 0,
        "sink overflowed — property would be vacuous"
    );
    assert_eq!(trace.parties.len(), parties);
    let resolution = causal_resolution(&trace);
    assert!(
        resolution.caused > 0,
        "run produced no caused events — nothing was traced"
    );
    assert_eq!(
        resolution.resolved, resolution.caused,
        "dangling causal parents: {:?}",
        resolution.dangling
    );
    let _ = std::fs::remove_dir_all(dir);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Threaded runtime: any short broadcast workload leaves a merged
    // trace whose every non-anchor event resolves its causal parent.
    #[test]
    fn threaded_traces_are_causally_closed(
        seed in 1u64..1_000,
        commands in 1usize..6,
    ) {
        with_deadline(60, move || {
            let dir = trace_dir("threaded");
            let keys = group_keys(4, 1, seed);
            let (group, mut handles) =
                ThreadedGroup::spawn_observable(keys, None, Some(traced_observability(&dir)));
            let channel = ProtocolId::new("causal-prop");
            drive(&mut handles, &channel, commands);
            group.shutdown();
            assert_causally_closed(&dir, 4);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    // Same property over real loopback-TCP sockets: framing, link
    // retransmission, and the verify pipeline must not break the chain.
    #[test]
    fn tcp_traces_are_causally_closed(
        seed in 1u64..1_000,
        commands in 1usize..4,
    ) {
        with_deadline(120, move || {
            let dir = trace_dir("tcp");
            let keys = group_keys(4, 1, seed);
            let config = TcpConfig {
                observability: Some(traced_observability(&dir)),
                ..TcpConfig::default()
            };
            let (group, mut handles) =
                TcpGroup::spawn_with(keys, config, None).expect("spawn tcp group");
            let channel = ProtocolId::new("causal-prop-tcp");
            drive(&mut handles, &channel, commands);
            group.shutdown();
            assert_causally_closed(&dir, 4);
        });
    }
}
