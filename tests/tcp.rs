//! Integration tests for the TCP runtime: real sockets on 127.0.0.1,
//! n = 4, t = 1. Atomic broadcast must deliver every payload in the
//! same order at every party; severing a replica's connections
//! mid-stream must be healed by reconnection and replay with no loss or
//! reordering; and shutdown must join every thread. A generic
//! close/close_wait scenario runs over both the threaded and the TCP
//! runtime through the [`PartyHandle`]/[`Runtime`] traits — the two
//! share one link layer and one teardown discipline.

mod common;

use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use common::group_keys;
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::tcp::TcpGroup;
use sintra::runtime::threaded::ThreadedGroup;
use sintra::runtime::{PartyHandle, Runtime};
use sintra::telemetry::{MetricsRegistry, RunReport};
use sintra::ProtocolId;

/// Runs `f` on a worker thread and fails the test if it neither
/// finishes nor panics within `secs` — a hard wall-clock bound so a
/// wedged socket or a lost frame cannot hang the suite.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("worker"),
        // The sender dropped without sending: the closure panicked.
        // Join to propagate the original panic message.
        Err(RecvTimeoutError::Disconnected) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Timeout) => panic!("test exceeded {secs}s wall-clock deadline"),
    }
}

#[test]
fn atomic_broadcast_over_loopback_tcp() {
    with_deadline(180, || {
        let (group, mut handles) = TcpGroup::spawn(group_keys(4, 1, 91)).expect("bind loopback");
        let pid = ProtocolId::new("tcp-ac");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        // 100 payloads, 25 from each party, fired concurrently.
        for (i, h) in handles.iter().enumerate() {
            for k in 0..25 {
                h.send(&pid, format!("{i}:{k:02}").into_bytes());
            }
        }
        let mut sequences = Vec::new();
        for h in handles.iter_mut() {
            let seq: Vec<Vec<u8>> = (0..100)
                .map(|_| h.receive(&pid).expect("live channel").data)
                .collect();
            sequences.push(seq);
        }
        for (i, s) in sequences.iter().enumerate().skip(1) {
            assert_eq!(s, &sequences[0], "party {i} diverges from party 0");
        }
        // Nothing lost, nothing invented.
        let mut sorted = sequences[0].clone();
        sorted.sort();
        let mut expected: Vec<Vec<u8>> = (0..4)
            .flat_map(|i| (0..25).map(move |k| format!("{i}:{k:02}").into_bytes()))
            .collect();
        expected.sort();
        assert_eq!(sorted, expected, "exactly the 100 sent payloads");
        group.shutdown();
    });
}

#[test]
fn severed_replica_reconnects_without_loss_or_reorder() {
    with_deadline(180, || {
        let registry = Arc::new(MetricsRegistry::new());
        let (group, mut handles) = TcpGroup::spawn_with(
            group_keys(4, 1, 92),
            sintra::runtime::tcp::TcpConfig::default(),
            Some(registry.clone()),
        )
        .expect("bind loopback");
        let pid = ProtocolId::new("tcp-sever");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        // Waves of traffic, killing replica 2's connections each wave.
        // The receive barrier between waves proves the group recovered;
        // repeated severing makes it overwhelmingly likely that frames
        // are cut mid-flight and must be replayed on resume.
        let mut per_party: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 4];
        let waves = 8;
        for wave in 0..waves {
            handles[2].sever_links();
            for (i, h) in handles.iter().enumerate() {
                h.send(&pid, format!("w{wave}-{i}").into_bytes());
            }
            for (i, h) in handles.iter_mut().enumerate() {
                for _ in 0..4 {
                    per_party[i].push(h.receive(&pid).expect("channel survives severing").data);
                }
            }
        }
        for (i, s) in per_party.iter().enumerate().skip(1) {
            assert_eq!(s, &per_party[0], "party {i} diverges after reconnects");
        }
        assert_eq!(per_party[0].len(), 4 * waves, "no delivery lost");

        let snapshot = registry.snapshot();
        assert!(
            snapshot.counter("link", "reconnects") > 0,
            "severed connections were re-established"
        );
        assert!(
            snapshot.counter("link", "retransmits") > 0,
            "unacknowledged frames were replayed on resume"
        );
        assert_eq!(
            snapshot.counter("link", "auth_failures"),
            0,
            "no frame failed authentication"
        );
        // The link counters surface in the run report.
        let report = RunReport::from_snapshot("tcp-sever", 4, 0, &snapshot);
        let json = report.to_json();
        assert!(json.contains("reconnects"), "report carries reconnects");
        assert!(json.contains("retransmits"), "report carries retransmits");
        group.shutdown();
    });
}

/// The shared close/close_wait discipline, written against the
/// transport-independent traits: every party closes, `close_wait`
/// returns the undelivered residue, and the runtime then shuts down
/// with every thread joined. Regression for the historical flakiness
/// where closing before the payload reached all parties could terminate
/// the channel without delivering it.
fn close_wait_scenario<R: Runtime>(group: R, mut handles: Vec<R::Handle>) {
    let pid = ProtocolId::new("close-regression");
    for h in &handles {
        h.create_reliable_channel(pid.clone());
    }
    handles[1].send(&pid, b"farewell".to_vec());
    // Barrier: the payload must be receivable everywhere before anyone
    // closes — fairness only bounds delivery while the channel is open.
    for h in handles.iter_mut() {
        while !h.can_receive(&pid) {
            std::thread::yield_now();
        }
    }
    for h in &handles {
        h.close(&pid);
    }
    for (i, h) in handles.iter_mut().enumerate() {
        let residual = h.close_wait(&pid);
        assert!(
            residual.iter().any(|p| p.data == b"farewell"),
            "party {i} lost the residual payload"
        );
    }
    group.shutdown();
}

#[test]
fn close_wait_terminates_over_tcp() {
    with_deadline(120, || {
        let (group, handles) = TcpGroup::spawn(group_keys(4, 1, 93)).expect("bind loopback");
        close_wait_scenario(group, handles);
    });
}

#[test]
fn close_wait_terminates_over_threads_via_shared_path() {
    with_deadline(120, || {
        let (group, handles) = ThreadedGroup::spawn(group_keys(4, 1, 94));
        close_wait_scenario(group, handles);
    });
}

#[test]
fn stalled_inbound_connections_do_not_starve_accepts() {
    // Regression for inbound handshakes running inline on the accept
    // loop: sockets that connect and then go silent each burn a full
    // handshake timeout, and enough of them serialize into accept
    // starvation. Handshakes now run on their own short-lived threads,
    // so legitimate redials complete while the stalled sockets wait out
    // their timeouts in parallel.
    with_deadline(180, || {
        let (group, mut handles) = TcpGroup::spawn(group_keys(4, 1, 96)).expect("bind loopback");
        // Party 3 accepts from everyone (lower ids dial). Stall its
        // listener with connections that never speak.
        let addr = group.addrs()[3];
        let stalled: Vec<std::net::TcpStream> = (0..8)
            .map(|_| std::net::TcpStream::connect(addr).expect("connect"))
            .collect();
        let pid = ProtocolId::new("tcp-stall");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        // Force everyone to redial party 3 while the stalled sockets
        // occupy its handshake threads.
        handles[3].sever_links();
        for (i, h) in handles.iter().enumerate() {
            h.send(&pid, format!("stall-{i}").into_bytes());
        }
        let mut sequences = Vec::new();
        for h in handles.iter_mut() {
            let seq: Vec<Vec<u8>> = (0..4)
                .map(|_| {
                    h.receive(&pid)
                        .expect("channel survives stalled peers")
                        .data
                })
                .collect();
            sequences.push(seq);
        }
        for (i, s) in sequences.iter().enumerate().skip(1) {
            assert_eq!(s, &sequences[0], "party {i} diverges under accept pressure");
        }
        drop(stalled);
        group.shutdown();
    });
}

#[test]
fn tcp_shutdown_joins_cleanly_while_idle() {
    // Teardown with live connections but no protocol traffic: every
    // listener, supervisor, reader and writer thread must exit.
    with_deadline(60, || {
        let (group, handles) = TcpGroup::spawn(group_keys(4, 1, 95)).expect("bind loopback");
        // Give dialers a moment to establish the mesh so shutdown tears
        // down real connections, not just empty state.
        std::thread::sleep(Duration::from_millis(100));
        drop(handles);
        group.shutdown();
    });
}
