//! Integration tests for the four channel protocols: total order, FIFO
//! order, close semantics and the secure channel's confidentiality
//! machinery, all under simulated wide-area conditions.

mod common;

use rand::SeedableRng;

use common::{closed_parties, delivered_data, delivered_payloads, lan_sim, wan_sim};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::{Event, PartyId, ProtocolId};

fn open_atomic(sim: &mut sintra::runtime::sim::Simulation, pid: &ProtocolId) {
    for p in 0..sim.n() {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
}

#[test]
fn atomic_total_order_under_jitter() {
    for seed in 0..4u64 {
        let pid = ProtocolId::new("at-jitter");
        let mut sim = wan_sim(4, 1, 1000 + seed);
        open_atomic(&mut sim, &pid);
        for p in 0..4 {
            let spid = pid.clone();
            sim.schedule((p as u64) * 30_000, p, move |node, out| {
                for k in 0..3 {
                    node.channel_send(&spid, format!("p{p}k{k}").into_bytes(), out);
                }
            });
        }
        sim.run();
        let reference = delivered_data(&sim, 0, &pid);
        assert_eq!(reference.len(), 12, "seed {seed}: all payloads delivered");
        for p in 1..4 {
            assert_eq!(
                delivered_data(&sim, p, &pid),
                reference,
                "seed {seed} party {p}"
            );
        }
    }
}

#[test]
fn atomic_fifo_per_sender_within_total_order() {
    let pid = ProtocolId::new("at-fifo");
    let mut sim = wan_sim(4, 1, 1100);
    open_atomic(&mut sim, &pid);
    let spid = pid.clone();
    sim.schedule(0, 1, move |node, out| {
        for k in 0..5u8 {
            node.channel_send(&spid, vec![k], out);
        }
    });
    sim.run();
    for p in 0..4 {
        let from_1: Vec<u8> = delivered_payloads(&sim, p, &pid)
            .into_iter()
            .filter(|pl| pl.origin == PartyId(1))
            .map(|pl| pl.data[0])
            .collect();
        assert_eq!(from_1, vec![0, 1, 2, 3, 4], "party {p} sender-FIFO");
    }
}

#[test]
fn atomic_close_with_quorum_of_requests() {
    let pid = ProtocolId::new("at-close");
    let mut sim = lan_sim(4, 1, 1200);
    open_atomic(&mut sim, &pid);
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&spid, b"before close".to_vec(), out);
    });
    for p in 0..4 {
        let spid = pid.clone();
        sim.schedule(500_000, p, move |node, out| {
            node.channel_close(&spid, out);
        });
    }
    sim.run();
    assert_eq!(closed_parties(&sim, &pid), vec![0, 1, 2, 3]);
    for p in 0..4 {
        assert_eq!(
            delivered_data(&sim, p, &pid),
            vec![b"before close".to_vec()],
            "party {p}"
        );
    }
}

#[test]
fn reliable_and_consistent_channels_fifo() {
    for kind in ["reliable", "consistent"] {
        let pid = ProtocolId::new(format!("mx-{kind}"));
        let mut sim = wan_sim(4, 1, 1300);
        for p in 0..4 {
            let node = sim.node_mut(p);
            if kind == "reliable" {
                node.create_reliable_channel(pid.clone());
            } else {
                node.create_consistent_channel(pid.clone());
            }
        }
        for sender in 0..2usize {
            let spid = pid.clone();
            sim.schedule(0, sender, move |node, out| {
                for k in 0..4u8 {
                    node.channel_send(&spid, vec![sender as u8, k], out);
                }
            });
        }
        sim.run();
        for p in 0..4 {
            let payloads = delivered_payloads(&sim, p, &pid);
            assert_eq!(payloads.len(), 8, "{kind} party {p}");
            for sender in 0..2usize {
                let seqs: Vec<u8> = payloads
                    .iter()
                    .filter(|pl| pl.origin == PartyId(sender))
                    .map(|pl| pl.data[1])
                    .collect();
                assert_eq!(seqs, vec![0, 1, 2, 3], "{kind} party {p} sender {sender}");
            }
        }
    }
}

#[test]
fn secure_channel_orders_then_decrypts() {
    let pid = ProtocolId::new("sc-int");
    let mut sim = wan_sim(4, 1, 1400);
    for p in 0..4 {
        sim.node_mut(p)
            .create_secure_channel(pid.clone(), AtomicChannelConfig::default());
    }
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&spid, b"secret-1".to_vec(), out);
        node.channel_send(&spid, b"secret-2".to_vec(), out);
    });
    sim.run();
    for p in 0..4 {
        assert_eq!(
            delivered_data(&sim, p, &pid),
            vec![b"secret-1".to_vec(), b"secret-2".to_vec()],
            "party {p}"
        );
        // Ordering notifications precede decrypted deliveries.
        let mut order_time = None;
        let mut deliver_time = None;
        for r in sim.records() {
            if r.party != p {
                continue;
            }
            match &r.event {
                Event::CiphertextOrdered { pid: epid, .. }
                    if epid == &pid && order_time.is_none() =>
                {
                    order_time = Some(r.time_us);
                }
                Event::ChannelDelivered { pid: epid, .. }
                    if epid == &pid && deliver_time.is_none() =>
                {
                    deliver_time = Some(r.time_us);
                }
                _ => {}
            }
        }
        let (o, d) = (
            order_time.expect("ordered"),
            deliver_time.expect("delivered"),
        );
        assert!(
            o <= d,
            "party {p}: ordering at {o} must precede delivery at {d}"
        );
    }
}

#[test]
fn secure_channel_ciphertexts_do_not_leak_plaintext() {
    let pid = ProtocolId::new("sc-leak");
    let mut sim = lan_sim(4, 1, 1500);
    for p in 0..4 {
        sim.node_mut(p)
            .create_secure_channel(pid.clone(), AtomicChannelConfig::default());
    }
    let secret = b"the launch code is 0000";
    let spid = pid.clone();
    let data = secret.to_vec();
    sim.schedule(0, 2, move |node, out| {
        node.channel_send(&spid, data, out);
    });
    sim.run();
    for r in sim.records() {
        if let Event::CiphertextOrdered { ciphertext, .. } = &r.event {
            assert!(
                !ciphertext.windows(secret.len()).any(|w| w == secret),
                "plaintext visible in ordered ciphertext"
            );
        }
    }
    assert_eq!(delivered_data(&sim, 1, &pid), vec![secret.to_vec()]);
}

#[test]
fn atomic_channel_with_shoup_threshold_signatures() {
    // The full stack under the paper's *other* signature configuration:
    // Shoup RSA threshold signatures instead of multi-signatures.
    use sintra::crypto::dealer::{deal, DealerConfig};
    use sintra::crypto::thsig::SigFlavor;
    use sintra::runtime::sim::{LatencyModel, MachineProfile, SimConfig, Simulation};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1700);
    let config = DealerConfig::small(4, 1).flavor(SigFlavor::ShoupRsa);
    let keys = deal(&config, &mut rng)
        .unwrap()
        .into_iter()
        .map(std::sync::Arc::new)
        .collect();
    let mut sim = Simulation::new(
        keys,
        SimConfig {
            latency: LatencyModel::lan(),
            machines: vec![MachineProfile::instant()],
            seed: 1700,
        },
    );
    let pid = ProtocolId::new("shoup-ac");
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    for p in 0..2 {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            node.channel_send(&spid, format!("shoup-{p}").into_bytes(), out);
        });
    }
    sim.run();
    let reference = delivered_data(&sim, 0, &pid);
    assert_eq!(reference.len(), 2);
    for p in 1..4 {
        assert_eq!(delivered_data(&sim, p, &pid), reference, "party {p}");
    }
}

#[test]
fn run_until_respects_the_deadline() {
    use sintra::runtime::sim::{LatencyModel, MachineProfile, SimConfig, Simulation};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1800);
    let keys =
        sintra::crypto::dealer::deal(&sintra::crypto::dealer::DealerConfig::small(4, 1), &mut rng)
            .unwrap()
            .into_iter()
            .map(std::sync::Arc::new)
            .collect();
    let mut sim = Simulation::new(
        keys,
        SimConfig {
            latency: LatencyModel::Constant { ms: 100.0 },
            machines: vec![MachineProfile::instant()],
            seed: 1800,
        },
    );
    let pid = ProtocolId::new("ru");
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&spid, b"x".to_vec(), out);
    });
    // One 100ms hop cannot complete a multi-hop protocol: nothing is
    // delivered by t=150ms, but the clock has advanced to the deadline.
    sim.run_until(150_000);
    assert!(sim.channel_deliveries(0, &pid).is_empty());
    assert!(sim.now() >= 150_000);
    // Finishing the run delivers everywhere.
    sim.run();
    for p in 0..4 {
        assert_eq!(sim.channel_deliveries(p, &pid).len(), 1, "party {p}");
    }
}

#[test]
fn two_channels_coexist_on_one_node() {
    let pid_a = ProtocolId::new("coexist-a");
    let pid_b = ProtocolId::new("coexist-b");
    let mut sim = lan_sim(4, 1, 1600);
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid_a.clone(), AtomicChannelConfig::default());
        sim.node_mut(p).create_reliable_channel(pid_b.clone());
    }
    let (sa, sb) = (pid_a.clone(), pid_b.clone());
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&sa, b"on-A".to_vec(), out);
        node.channel_send(&sb, b"on-B".to_vec(), out);
    });
    sim.run();
    for p in 0..4 {
        assert_eq!(delivered_data(&sim, p, &pid_a), vec![b"on-A".to_vec()]);
        assert_eq!(delivered_data(&sim, p, &pid_b), vec![b"on-B".to_vec()]);
    }
}

#[test]
fn optimistic_channel_in_simulation_with_leader_crash() {
    // The §6 optimistic channel under the simulator: fast path while the
    // leader is honest, timeout-triggered recovery when it crashes, and
    // identical total order at every honest server throughout.
    use sintra::protocols::channel::OptimisticChannelConfig;
    let pid = ProtocolId::new("opt-sim");
    let mut sim = common::lan_sim(4, 1, 4000);
    for p in 0..4 {
        sim.node_mut(p)
            .create_optimistic_channel(pid.clone(), OptimisticChannelConfig::default());
    }
    // Phase 1: leader P0 alive; everyone sends.
    for p in 0..4 {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            node.channel_send(&spid, format!("fast-{p}").into_bytes(), out);
        });
    }
    // Phase 2: P0 crashes at 1s; P1 sends afterwards — recovery must kick
    // in (complaint timeout 2s) and the new epoch must deliver it.
    sim.set_fault(0, sintra::runtime::sim::Fault::Crash { at_us: 1_000_000 });
    let spid = pid.clone();
    sim.schedule(1_500_000, 1, move |node, out| {
        node.channel_send(&spid, b"post-crash".to_vec(), out);
    });
    sim.run();
    let reference = delivered_data(&sim, 1, &pid);
    assert_eq!(reference.len(), 5, "4 fast-path + 1 recovered payload");
    assert_eq!(
        reference.last().map(Vec::as_slice),
        Some(&b"post-crash"[..])
    );
    for p in 2..4 {
        assert_eq!(delivered_data(&sim, p, &pid), reference, "party {p}");
    }
}
