//! Shared helpers for the integration tests: dealt groups, simulations
//! and event extraction.

#![allow(dead_code)]

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sintra::crypto::dealer::{deal, DealerConfig, PartyKeys};
use sintra::protocols::message::Payload;
use sintra::runtime::sim::{LatencyModel, MachineProfile, SimConfig, Simulation};
use sintra::{Event, ProtocolId};

/// Deals a small-key group deterministically.
pub fn group_keys(n: usize, t: usize, seed: u64) -> Vec<Arc<PartyKeys>> {
    let mut rng = StdRng::seed_from_u64(seed);
    deal(&DealerConfig::small(n, t), &mut rng)
        .unwrap()
        .into_iter()
        .map(Arc::new)
        .collect()
}

/// A LAN-like simulation over a fresh group.
pub fn lan_sim(n: usize, t: usize, seed: u64) -> Simulation {
    Simulation::new(
        group_keys(n, t, seed),
        SimConfig {
            latency: LatencyModel::lan(),
            machines: vec![MachineProfile::instant()],
            seed,
        },
    )
}

/// A high-latency, high-jitter simulation (stress-tests asynchrony).
pub fn wan_sim(n: usize, t: usize, seed: u64) -> Simulation {
    Simulation::new(
        group_keys(n, t, seed),
        SimConfig {
            latency: LatencyModel::Uniform {
                min_ms: 10.0,
                max_ms: 400.0,
            },
            machines: vec![MachineProfile::new("sim", 5.0)],
            seed,
        },
    )
}

/// The payload bytes delivered at `party` on channel `pid`, in order.
pub fn delivered_data(sim: &Simulation, party: usize, pid: &ProtocolId) -> Vec<Vec<u8>> {
    sim.channel_deliveries(party, pid)
        .into_iter()
        .map(|(_, p)| p.data)
        .collect()
}

/// The full payloads delivered at `party` on channel `pid`.
pub fn delivered_payloads(sim: &Simulation, party: usize, pid: &ProtocolId) -> Vec<Payload> {
    sim.channel_deliveries(party, pid)
        .into_iter()
        .map(|(_, p)| p)
        .collect()
}

/// Extracts binary-agreement decisions per party for an instance.
pub fn binary_decisions(sim: &Simulation, pid: &ProtocolId, n: usize) -> Vec<Option<bool>> {
    let mut out = vec![None; n];
    for r in sim.records() {
        if let Event::BinaryDecided {
            pid: epid, value, ..
        } = &r.event
        {
            if epid == pid {
                out[r.party] = Some(*value);
            }
        }
    }
    out
}

/// Extracts multi-valued decisions per party for an instance.
pub fn multi_decisions(sim: &Simulation, pid: &ProtocolId, n: usize) -> Vec<Option<Vec<u8>>> {
    let mut out = vec![None; n];
    for r in sim.records() {
        if let Event::MultiDecided { pid: epid, value } = &r.event {
            if epid == pid {
                out[r.party] = Some(value.clone());
            }
        }
    }
    out
}

/// Extracts broadcast deliveries per party for an instance.
pub fn broadcast_deliveries(sim: &Simulation, pid: &ProtocolId, n: usize) -> Vec<Option<Vec<u8>>> {
    let mut out = vec![None; n];
    for r in sim.records() {
        if let Event::BroadcastDelivered { pid: epid, payload } = &r.event {
            if epid == pid {
                out[r.party] = Some(payload.clone());
            }
        }
    }
    out
}

/// Which parties saw the channel close.
pub fn closed_parties(sim: &Simulation, pid: &ProtocolId) -> Vec<usize> {
    let mut out: Vec<usize> = sim
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            Event::ChannelClosed { pid: epid } if epid == pid => Some(r.party),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}
