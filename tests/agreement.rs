//! Integration tests for binary and multi-valued Byzantine agreement
//! across realistic (jittered, reordered) simulated schedules.

mod common;

use common::{binary_decisions, lan_sim, multi_decisions, wan_sim};
use sintra::protocols::agreement::CandidateOrder;
use sintra::protocols::validator::{ArrayValidator, BinaryValidator};
use sintra::runtime::sim::byzantine::Silent;
use sintra::ProtocolId;

#[test]
fn binary_agreement_unanimity_under_jitter() {
    for seed in 0..5u64 {
        let pid = ProtocolId::new("ba-u");
        let mut sim = wan_sim(4, 1, 400 + seed);
        for p in 0..4 {
            sim.node_mut(p)
                .create_binary_agreement(pid.clone(), None, None);
        }
        for p in 0..4 {
            let spid = pid.clone();
            sim.schedule(0, p, move |node, out| {
                node.propose_binary(&spid, true, Vec::new(), out);
            });
        }
        sim.run();
        let decisions = binary_decisions(&sim, &pid, 4);
        for (p, d) in decisions.iter().enumerate() {
            assert_eq!(*d, Some(true), "seed {seed} party {p}");
        }
    }
}

#[test]
fn binary_agreement_split_proposals_agree() {
    for seed in 0..6u64 {
        let pid = ProtocolId::new("ba-s");
        let mut sim = wan_sim(4, 1, 500 + seed);
        for p in 0..4 {
            sim.node_mut(p)
                .create_binary_agreement(pid.clone(), None, None);
        }
        for p in 0..4 {
            let spid = pid.clone();
            let value = p % 2 == 0;
            sim.schedule((p as u64) * 50_000, p, move |node, out| {
                node.propose_binary(&spid, value, Vec::new(), out);
            });
        }
        sim.run();
        let decisions = binary_decisions(&sim, &pid, 4);
        let first = decisions[0].expect("decided");
        for (p, d) in decisions.iter().enumerate() {
            assert_eq!(*d, Some(first), "seed {seed} party {p}: {decisions:?}");
        }
    }
}

#[test]
fn binary_agreement_with_silent_party() {
    // One party is silent (Byzantine-crash); the other n - t = 3 decide.
    let pid = ProtocolId::new("ba-silent");
    let mut sim = lan_sim(4, 1, 600);
    for p in 0..3 {
        sim.node_mut(p)
            .create_binary_agreement(pid.clone(), None, None);
    }
    sim.set_byzantine(3, Box::new(Silent));
    for p in 0..3 {
        let spid = pid.clone();
        let value = p == 0;
        sim.schedule(0, p, move |node, out| {
            node.propose_binary(&spid, value, Vec::new(), out);
        });
    }
    sim.run();
    let decisions = binary_decisions(&sim, &pid, 4);
    let first = decisions[0].expect("decided");
    for (p, d) in decisions.iter().enumerate().take(3) {
        assert_eq!(*d, Some(first), "party {p}");
    }
    assert_eq!(decisions[3], None);
}

#[test]
fn validated_biased_agreement_from_node_api() {
    let pid = ProtocolId::new("ba-vb");
    let mut sim = lan_sim(4, 1, 601);
    let validator = BinaryValidator::new(|value, proof| !value || proof == b"ticket");
    for p in 0..4 {
        sim.node_mut(p)
            .create_binary_agreement(pid.clone(), Some(validator.clone()), Some(true));
    }
    // Two parties propose the biased value 1 (with the "ticket" proving
    // its validity), two propose 0. Every quorum of n - t = 3 pre-votes
    // then contains a 1, so the protocol *detects* an honest proposal of
    // the preferred value — the paper's bias property requires it to
    // decide 1, and the proof must propagate to every decider.
    for p in 0..4 {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            if p % 2 == 0 {
                node.propose_binary(&spid, true, b"ticket".to_vec(), out);
            } else {
                node.propose_binary(&spid, false, Vec::new(), out);
            }
        });
    }
    sim.run();
    let decisions = binary_decisions(&sim, &pid, 4);
    for (p, d) in decisions.iter().enumerate() {
        assert_eq!(*d, Some(true), "party {p}");
    }
}

#[test]
fn multi_valued_agreement_under_jitter() {
    for order in [
        CandidateOrder::Fixed,
        CandidateOrder::LocalRandom,
        CandidateOrder::CommonCoin,
    ] {
        for seed in 0..3u64 {
            let pid = ProtocolId::new(format!("vba-{order:?}-{seed}"));
            let mut sim = wan_sim(4, 1, 700 + seed);
            for p in 0..4 {
                sim.node_mut(p)
                    .create_multi_valued(pid.clone(), ArrayValidator::always(), order);
            }
            let proposals: Vec<Vec<u8>> = (0..4)
                .map(|p| format!("proposal-{p}").into_bytes())
                .collect();
            for (p, proposal) in proposals.iter().enumerate() {
                let spid = pid.clone();
                let value = proposal.clone();
                sim.schedule(0, p, move |node, out| {
                    node.propose_multi(&spid, value, out);
                });
            }
            sim.run();
            let decisions = multi_decisions(&sim, &pid, 4);
            let first = decisions[0].clone().expect("decided");
            assert!(proposals.contains(&first), "external validity");
            for (p, d) in decisions.iter().enumerate() {
                assert_eq!(d.as_ref(), Some(&first), "{order:?} seed {seed} party {p}");
            }
        }
    }
}

#[test]
fn multi_valued_agreement_with_crashed_party() {
    let pid = ProtocolId::new("vba-crash");
    let mut sim = lan_sim(4, 1, 800);
    for p in 0..4 {
        sim.node_mut(p).create_multi_valued(
            pid.clone(),
            ArrayValidator::always(),
            CandidateOrder::LocalRandom,
        );
    }
    sim.set_fault(2, sintra::runtime::sim::Fault::Crash { at_us: 0 });
    for p in [0usize, 1, 3] {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            node.propose_multi(&spid, format!("v{p}").into_bytes(), out);
        });
    }
    sim.run();
    let decisions = multi_decisions(&sim, &pid, 4);
    let first = decisions[0].clone().expect("decided despite crash");
    for p in [0usize, 1, 3] {
        assert_eq!(decisions[p].as_ref(), Some(&first), "party {p}");
    }
}

#[test]
fn seven_party_group_agreement() {
    // The paper's hybrid scale: n = 7, t = 2, two silent parties.
    let pid = ProtocolId::new("ba-7");
    let mut sim = lan_sim(7, 2, 900);
    for p in 0..5 {
        sim.node_mut(p)
            .create_binary_agreement(pid.clone(), None, None);
    }
    sim.set_byzantine(5, Box::new(Silent));
    sim.set_byzantine(6, Box::new(Silent));
    for p in 0..5 {
        let spid = pid.clone();
        let value = p < 2;
        sim.schedule(0, p, move |node, out| {
            node.propose_binary(&spid, value, Vec::new(), out);
        });
    }
    sim.run();
    let decisions = binary_decisions(&sim, &pid, 7);
    let first = decisions[0].expect("decided");
    for (p, d) in decisions.iter().enumerate().take(5) {
        assert_eq!(*d, Some(first), "party {p}");
    }
}
