//! Integration tests for the live metrics plane: real loopback-TCP
//! groups serving per-party scrape endpoints.
//!
//! Three properties matter beyond "the numbers exist": the endpoint
//! answers *while the protocol is wedged* (a stalled group is exactly
//! when an operator scrapes it), the `stalled` gauge tracks the stall
//! detector through recovery — not just into the incident — and the
//! scrape socket dies with its group so monitoring fails fast instead of
//! reading a half-torn-down party.

mod common;

use std::net::SocketAddr;
use std::sync::mpsc::RecvTimeoutError;
use std::time::{Duration, Instant};

use common::group_keys;
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::tcp::{TcpConfig, TcpGroup};
use sintra::runtime::threaded::ThreadedGroup;
use sintra::runtime::{MetricsConfig, ObservabilityConfig, PartyHandle};
use sintra::testbed::scrape::{missing_series, negative_rates, scrape};
use sintra::ProtocolId;

/// Runs `f` on a worker thread and fails the test if it neither
/// finishes nor panics within `secs` (same guard as the TCP suite).
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Disconnected) => worker.join().expect("worker"),
        Err(RecvTimeoutError::Timeout) => panic!("test exceeded {secs}s wall-clock deadline"),
    }
}

/// A fresh per-test dump directory under the system temp dir.
fn dump_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sintra-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");
    dir
}

fn metrics_config(quiet_ms: u64, dir: &std::path::Path) -> TcpConfig {
    TcpConfig {
        observability: Some(ObservabilityConfig {
            quiet: Duration::from_millis(quiet_ms),
            dump_dir: dir.to_path_buf(),
            metrics: Some(MetricsConfig::default()),
            ..ObservabilityConfig::default()
        }),
        ..TcpConfig::default()
    }
}

/// Polls one party's scrape endpoint until `sintra_stalled` reads
/// `want`, panicking if it never does.
fn await_stalled(addr: SocketAddr, party: &str, want: f64, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let exposition = scrape(addr, Duration::from_secs(2)).expect("scrape answers");
        if exposition.value("sintra_stalled", &[("party", party)]) == Some(want) {
            return;
        }
        assert!(
            Instant::now() < until,
            "stalled gauge never reached {want} for party {party}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The CI `metrics-smoke` scenario: a live n = 4 group over loopback
/// TCP, every party scraped twice. Each exposition must parse, carry the
/// key series of every layer (protocol counters, phase attribution,
/// latency histograms, link gauges, the stall verdict), label itself
/// with the right party, and every counter's windowed rate between the
/// two scrapes must be finite and non-negative.
#[test]
fn scrape_smoke_over_live_tcp_group() {
    with_deadline(180, || {
        let dir = dump_dir("metrics-smoke");
        let (group, mut handles) =
            TcpGroup::spawn_with(group_keys(4, 1, 4100), metrics_config(2000, &dir), None)
                .expect("bind loopback");
        let addrs = group.metrics_addrs();
        assert_eq!(addrs.len(), 4, "one scrape endpoint per party");

        let pid = ProtocolId::new("metrics-smoke");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        for (i, h) in handles.iter().enumerate() {
            for k in 0..10 {
                h.send(&pid, format!("{i}:{k}").into_bytes());
            }
        }
        for h in handles.iter_mut() {
            for _ in 0..40 {
                h.receive(&pid).expect("live channel");
            }
        }

        let key_series = [
            "sintra_msgs_sent_total",
            "sintra_bytes_sent_total",
            "sintra_msgs_delivered_total",
            "sintra_deliveries_total",
            "sintra_crypto_work_milli_total",
            "sintra_dispatch_us_total",
            "sintra_net_dispatch_us_total",
            "sintra_flush_us_total",
            "sintra_delivery_latency_us_bucket",
            "sintra_delivery_latency_us_count",
            "sintra_stalled",
            "sintra_inbox_depth",
            "sintra_retransmit_queue_bytes",
            "sintra_retransmit_queue_bytes_hwm",
        ];
        let first: Vec<_> = addrs
            .iter()
            .map(|&addr| scrape(addr, Duration::from_secs(5)).expect("first scrape"))
            .collect();
        std::thread::sleep(Duration::from_millis(200));
        let elapsed = Duration::from_millis(200);
        for (party, (&addr, before)) in addrs.iter().zip(&first).enumerate() {
            let now = scrape(addr, Duration::from_secs(5)).expect("second scrape");
            assert_eq!(
                now.label_values("party"),
                vec![party.to_string()],
                "every series of party {party} carries its own label"
            );
            let missing = missing_series(&now, &key_series);
            assert!(missing.is_empty(), "party {party} scrape lacks {missing:?}");
            let bad = negative_rates(before, &now, elapsed);
            assert!(bad.is_empty(), "party {party} has bad rates in {bad:?}");
            // The latency histogram saw this party's own 10 sends.
            assert_eq!(
                now.value(
                    "sintra_delivery_latency_us_count",
                    &[("scope", "metrics-smoke")]
                ),
                Some(10.0)
            );
            assert!(
                now.quantile(
                    "sintra_delivery_latency_us",
                    &[("scope", "metrics-smoke")],
                    0.95
                )
                .expect("p95 exists")
                    > 0.0
            );
            // 40 channel deliveries reached the application.
            assert_eq!(
                now.value("sintra_deliveries_total", &[("scope", "metrics-smoke")]),
                Some(40.0)
            );
        }
        group.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// The stall detector's verdict must be scrapeable through a wedge and
/// flip back on recovery: two of four proposals leave binary agreement
/// short of its `n - t = 3` quorum (stalled = 1, endpoint still
/// answering), the missing proposals arrive (stalled = 0), and group
/// shutdown closes the scrape socket cleanly.
#[test]
fn stalled_gauge_tracks_wedge_and_recovery() {
    with_deadline(180, || {
        let dir = dump_dir("metrics-stall");
        let (group, mut handles) =
            TcpGroup::spawn_with(group_keys(4, 1, 4200), metrics_config(300, &dir), None)
                .expect("bind loopback");
        let addrs = group.metrics_addrs();
        let pid = ProtocolId::new("metrics-ba");
        for h in &handles {
            h.create_binary_agreement(pid.clone(), None, None);
        }
        // Two proposals cannot form any 3-party quorum: every party now
        // has the instance live with pending work and no way to make
        // progress — the stall detector must fire, and the scrape
        // endpoint must keep answering while it does.
        handles[0].propose_binary(&pid, true, Vec::new());
        handles[1].propose_binary(&pid, true, Vec::new());
        await_stalled(addrs[0], "0", 1.0, Duration::from_secs(60));

        // Recovery: the missing proposals arrive, agreement decides, and
        // the fresh input flips the gauge back at the next scrape.
        handles[2].propose_binary(&pid, true, Vec::new());
        handles[3].propose_binary(&pid, true, Vec::new());
        for h in handles.iter_mut() {
            let (value, _) = h.decide_binary(&pid).expect("agreement decides");
            assert!(value, "all-true proposals decide true");
        }
        await_stalled(addrs[0], "0", 0.0, Duration::from_secs(60));

        // The endpoint dies with its group — a scraper fails fast
        // instead of reading a half-torn-down party.
        group.shutdown();
        for addr in addrs {
            assert!(
                scrape(addr, Duration::from_secs(2)).is_err(),
                "scrape socket closed on shutdown"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// The in-process runtime serves the same metrics plane (minus the
/// TCP-only link gauges) through `spawn_observable`.
#[test]
fn threaded_runtime_serves_scrapes_too() {
    with_deadline(120, || {
        let observability = ObservabilityConfig {
            metrics: Some(MetricsConfig::default()),
            dump_dir: std::env::temp_dir(),
            ..ObservabilityConfig::default()
        };
        let (group, mut handles) =
            ThreadedGroup::spawn_observable(group_keys(4, 1, 4300), None, Some(observability));
        let addrs = group.metrics_addrs();
        assert_eq!(addrs.len(), 4);

        let pid = ProtocolId::new("threaded-metrics");
        for h in &handles {
            h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
        }
        handles[1].send(&pid, b"one payload".to_vec());
        for h in handles.iter_mut() {
            h.receive(&pid).expect("live channel");
        }
        let exposition = scrape(addrs[2], Duration::from_secs(5)).expect("scrape party 2");
        assert_eq!(exposition.label_values("party"), vec!["2".to_string()]);
        assert!(missing_series(
            &exposition,
            &[
                "sintra_msgs_sent_total",
                "sintra_deliveries_total",
                "sintra_stalled"
            ]
        )
        .is_empty());
        group.shutdown();
        assert!(scrape(addrs[2], Duration::from_secs(2)).is_err());
    });
}
