//! End-to-end state-machine replication: the paper's raison d'être.
//! A bank-ledger state machine is replicated over the atomic channel in
//! the simulator and over real threads, with and without faults, and all
//! replicas must converge to the same state.

mod common;

use std::collections::BTreeMap;

use common::{delivered_data, group_keys, lan_sim, wan_sim};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::sim::Fault;
use sintra::runtime::threaded::ThreadedGroup;
use sintra::ProtocolId;

/// A deterministic state machine: account balances with transfers.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Ledger {
    balances: BTreeMap<String, i64>,
}

impl Ledger {
    fn apply(&mut self, command: &[u8]) {
        let text = String::from_utf8_lossy(command);
        let parts: Vec<&str> = text.split(' ').collect();
        match parts.as_slice() {
            ["deposit", account, amount] => {
                if let Ok(v) = amount.parse::<i64>() {
                    *self.balances.entry(account.to_string()).or_insert(0) += v;
                }
            }
            ["transfer", from, to, amount] => {
                if let Ok(v) = amount.parse::<i64>() {
                    let available = self.balances.get(*from).copied().unwrap_or(0);
                    // Deterministic business rule: reject overdrafts.
                    if available >= v {
                        *self.balances.entry(from.to_string()).or_insert(0) -= v;
                        *self.balances.entry(to.to_string()).or_insert(0) += v;
                    }
                }
            }
            _ => {}
        }
    }
}

fn replay(commands: &[Vec<u8>]) -> Ledger {
    let mut ledger = Ledger::default();
    for c in commands {
        ledger.apply(c);
    }
    ledger
}

#[test]
fn replicated_ledger_converges_in_simulation() {
    let pid = ProtocolId::new("ledger");
    let mut sim = wan_sim(4, 1, 3000);
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    // Conflicting concurrent commands through different servers: the
    // outcome depends on the order, so convergence proves total order.
    let commands: Vec<(usize, &str)> = vec![
        (0, "deposit alice 100"),
        (1, "deposit bob 50"),
        (2, "transfer alice bob 80"),
        (3, "transfer alice carol 80"), // at most one of the two transfers succeeds
        (0, "transfer bob alice 10"),
    ];
    for (server, cmd) in commands {
        let spid = pid.clone();
        let bytes = cmd.as_bytes().to_vec();
        sim.schedule(0, server, move |node, out| {
            node.channel_send(&spid, bytes, out);
        });
    }
    sim.run();
    let reference = replay(&delivered_data(&sim, 0, &pid));
    assert_eq!(delivered_data(&sim, 0, &pid).len(), 5);
    for p in 1..4 {
        let state = replay(&delivered_data(&sim, p, &pid));
        assert_eq!(state, reference, "replica {p} diverged");
    }
    // Money conservation: deposits put 150 into the system.
    let total: i64 = reference.balances.values().sum();
    assert_eq!(total, 150);
    // Exactly one of the conflicting transfers was applied.
    let alice = reference.balances.get("alice").copied().unwrap_or(0);
    assert!(alice < 100, "one transfer out of alice succeeded");
}

#[test]
fn replicated_ledger_converges_with_crash() {
    let pid = ProtocolId::new("ledger-crash");
    let mut sim = lan_sim(4, 1, 3100);
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    sim.set_fault(1, Fault::Crash { at_us: 100_000 });
    for k in 0..6u64 {
        let spid = pid.clone();
        sim.schedule(k * 40_000, 0, move |node, out| {
            node.channel_send(&spid, format!("deposit acct{k} 1").into_bytes(), out);
        });
    }
    sim.run();
    let reference = replay(&delivered_data(&sim, 0, &pid));
    assert_eq!(reference.balances.len(), 6, "all deposits applied");
    for p in [2usize, 3] {
        assert_eq!(
            replay(&delivered_data(&sim, p, &pid)),
            reference,
            "replica {p}"
        );
    }
}

#[test]
fn replicated_ledger_over_real_threads() {
    let keys = group_keys(4, 1, 3200);
    let (group, mut servers) = ThreadedGroup::spawn(keys);
    let pid = ProtocolId::new("ledger-threads");
    for s in &servers {
        s.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    let commands = [
        (0usize, "deposit alice 10"),
        (1, "deposit alice 20"),
        (2, "deposit bob 5"),
        (3, "transfer alice bob 15"),
    ];
    for (server, cmd) in commands {
        servers[server].send(&pid, cmd.as_bytes().to_vec());
    }
    let mut ledgers = Vec::new();
    for server in servers.iter_mut() {
        let mut ledger = Ledger::default();
        for _ in 0..commands.len() {
            let payload = server.receive(&pid).expect("delivery");
            ledger.apply(&payload.data);
        }
        ledgers.push(ledger);
    }
    for (i, l) in ledgers.iter().enumerate().skip(1) {
        assert_eq!(l, &ledgers[0], "replica {i}");
    }
    assert_eq!(ledgers[0].balances.values().sum::<i64>(), 35);
    group.shutdown();
}

#[test]
fn confidential_replication_over_secure_channel() {
    // The same ledger but commands stay encrypted until ordered.
    let pid = ProtocolId::new("ledger-secure");
    let mut sim = lan_sim(4, 1, 3300);
    for p in 0..4 {
        sim.node_mut(p)
            .create_secure_channel(pid.clone(), AtomicChannelConfig::default());
    }
    for (k, cmd) in ["deposit alice 7", "deposit bob 3", "transfer alice bob 2"]
        .iter()
        .enumerate()
    {
        let spid = pid.clone();
        let bytes = cmd.as_bytes().to_vec();
        sim.schedule(0, k % 4, move |node, out| {
            node.channel_send(&spid, bytes, out);
        });
    }
    sim.run();
    let reference = replay(&delivered_data(&sim, 0, &pid));
    assert_eq!(reference.balances.values().sum::<i64>(), 10);
    for p in 1..4 {
        assert_eq!(
            replay(&delivered_data(&sim, p, &pid)),
            reference,
            "replica {p}"
        );
    }
}
