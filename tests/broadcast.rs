//! Integration tests for the broadcast primitives under the simulated
//! network: agreement, consistency and authenticity across realistic
//! message schedules.

mod common;

use common::{broadcast_deliveries, lan_sim, wan_sim};
use sintra::runtime::sim::byzantine::EquivocatingSender;
use sintra::{PartyId, ProtocolId};

#[test]
fn reliable_broadcast_all_honest() {
    let pid = ProtocolId::new("rb");
    let mut sim = lan_sim(4, 1, 101);
    for p in 0..4 {
        sim.node_mut(p)
            .create_reliable_broadcast(pid.clone(), PartyId(1));
    }
    let spid = pid.clone();
    sim.schedule(0, 1, move |node, out| {
        node.broadcast_send(&spid, b"reliable payload".to_vec(), out);
    });
    sim.run();
    let got = broadcast_deliveries(&sim, &pid, 4);
    for (p, d) in got.iter().enumerate() {
        assert_eq!(d.as_deref(), Some(&b"reliable payload"[..]), "party {p}");
    }
}

#[test]
fn reliable_broadcast_high_jitter_schedules() {
    // Heavy reordering across 5 different seeds must never break
    // agreement.
    for seed in 0..5u64 {
        let pid = ProtocolId::new("rb-jitter");
        let mut sim = wan_sim(4, 1, 200 + seed);
        for p in 0..4 {
            sim.node_mut(p)
                .create_reliable_broadcast(pid.clone(), PartyId(0));
        }
        let spid = pid.clone();
        sim.schedule(0, 0, move |node, out| {
            node.broadcast_send(&spid, b"m".to_vec(), out);
        });
        sim.run();
        let got = broadcast_deliveries(&sim, &pid, 4);
        assert!(
            got.iter().all(|d| d.as_deref() == Some(&b"m"[..])),
            "seed {seed}: {got:?}"
        );
    }
}

#[test]
fn reliable_broadcast_byzantine_equivocation_no_split() {
    // A Byzantine sender shows "a" to one half and "b" to the other. The
    // Bracha protocol must prevent honest parties from delivering
    // different payloads (they may deliver one of them, or nothing).
    for seed in 0..4u64 {
        let pid = ProtocolId::new("rb-equiv");
        let mut sim = lan_sim(4, 1, 300 + seed);
        for p in 1..4 {
            sim.node_mut(p)
                .create_reliable_broadcast(pid.clone(), PartyId(0));
        }
        sim.set_byzantine(
            0,
            Box::new(EquivocatingSender {
                pid: pid.clone(),
                payload_a: b"a".to_vec(),
                payload_b: b"b".to_vec(),
                group_a: vec![1, 2],
                n: 4,
            }),
        );
        sim.schedule(0, 0, |_, _| {}); // fire the Byzantine actor
        sim.run();
        let got = broadcast_deliveries(&sim, &pid, 4);
        let delivered: Vec<&Vec<u8>> = got[1..].iter().flatten().collect();
        for pair in delivered.windows(2) {
            assert_eq!(pair[0], pair[1], "seed {seed}: honest split: {got:?}");
        }
    }
}

#[test]
fn consistent_broadcast_delivers_with_signature() {
    let pid = ProtocolId::new("cb");
    let mut sim = lan_sim(4, 1, 102);
    for p in 0..4 {
        sim.node_mut(p)
            .create_consistent_broadcast(pid.clone(), PartyId(2));
    }
    let spid = pid.clone();
    sim.schedule(0, 2, move |node, out| {
        node.broadcast_send(&spid, b"echo broadcast".to_vec(), out);
    });
    sim.run();
    let got = broadcast_deliveries(&sim, &pid, 4);
    for (p, d) in got.iter().enumerate() {
        assert_eq!(d.as_deref(), Some(&b"echo broadcast"[..]), "party {p}");
    }
}

#[test]
fn consistent_broadcast_survives_slow_quorum() {
    // Only a quorum (3 of 4) participates: the sender can still assemble
    // the threshold signature from ⌈(n+t+1)/2⌉ = 3 shares (its own echo
    // share counts), and the fourth party delivers late from the final
    // message.
    let pid = ProtocolId::new("cb-slow");
    let mut sim = lan_sim(4, 1, 103);
    for p in 0..4 {
        sim.node_mut(p)
            .create_consistent_broadcast(pid.clone(), PartyId(0));
    }
    // Party 3's outbound messages are held for 10 virtual seconds.
    sim.set_link_filter(|from, _to, t| {
        if from == 3 && t < 10_000_000 {
            sintra::runtime::sim::LinkDecision::DelayUntil(10_000_000)
        } else {
            sintra::runtime::sim::LinkDecision::Deliver
        }
    });
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.broadcast_send(&spid, b"m".to_vec(), out);
    });
    sim.run();
    let got = broadcast_deliveries(&sim, &pid, 4);
    assert!(
        got.iter().all(|d| d.as_deref() == Some(&b"m"[..])),
        "{got:?}"
    );
}

#[test]
fn broadcast_instances_are_isolated() {
    // Two concurrent broadcasts with different pids and senders must not
    // interfere.
    let pid_a = ProtocolId::new("iso-a");
    let pid_b = ProtocolId::new("iso-b");
    let mut sim = lan_sim(4, 1, 104);
    for p in 0..4 {
        sim.node_mut(p)
            .create_reliable_broadcast(pid_a.clone(), PartyId(0));
        sim.node_mut(p)
            .create_consistent_broadcast(pid_b.clone(), PartyId(1));
    }
    let sa = pid_a.clone();
    sim.schedule(0, 0, move |node, out| {
        node.broadcast_send(&sa, b"payload-A".to_vec(), out);
    });
    let sb = pid_b.clone();
    sim.schedule(0, 1, move |node, out| {
        node.broadcast_send(&sb, b"payload-B".to_vec(), out);
    });
    sim.run();
    for p in 0..4 {
        let a = broadcast_deliveries(&sim, &pid_a, 4)[p].clone();
        let b = broadcast_deliveries(&sim, &pid_b, 4)[p].clone();
        assert_eq!(a.as_deref(), Some(&b"payload-A"[..]), "party {p}");
        assert_eq!(b.as_deref(), Some(&b"payload-B"[..]), "party {p}");
    }
}
