//! Integration tests for the telemetry layer: a real 4-party atomic
//! broadcast run must produce consistent counters, trace events and a
//! well-formed run report.

mod common;

use std::sync::Arc;

use common::{group_keys, lan_sim};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::threaded::ThreadedGroup;
use sintra::telemetry::{MetricsRegistry, RunReport};
use sintra::ProtocolId;

#[test]
fn sim_run_produces_consistent_counters() {
    let pid = ProtocolId::new("telemetry-ac");
    let mut sim = lan_sim(4, 1, 71);
    let registry = Arc::new(MetricsRegistry::new());
    registry.set_trace_capture(true);
    sim.set_recorder(registry.clone());
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    for p in 0..4 {
        let spid = pid.clone();
        sim.schedule(0, p, move |node, out| {
            node.channel_send(&spid, format!("t{p}").into_bytes(), out);
        });
    }
    let end_us = sim.run();

    let snapshot = registry.snapshot();
    let sent = snapshot.counter_total("msgs_sent");
    let delivered = snapshot.counter_total("msgs_delivered");
    let dropped = snapshot.counter_total("msgs_dropped");
    assert!(sent > 0, "a live run transmits messages");
    assert_eq!(sent, delivered + dropped, "message conservation");
    assert!(snapshot.counter_total("bytes_sent") > 0);
    assert!(
        snapshot.counter("telemetry-ac", "rounds") > 0,
        "atomic rounds observed"
    );
    assert!(
        snapshot.counter_total("crypto_work_milli") > 0,
        "crypto work attributed"
    );
    assert_eq!(
        snapshot.counter_total("deliveries"),
        16,
        "4 payloads x 4 parties"
    );

    // Trace events were captured, with virtual timestamps and the
    // channel's protocol family.
    let traces = registry.take_traces();
    assert!(!traces.is_empty(), "trace stream captured");
    assert!(traces.iter().any(|t| t.family == "atomic"));
    assert!(traces.iter().all(|t| t.time_us <= end_us));

    // The report reproduces the counters and serializes both ways.
    let report = RunReport::from_snapshot("integration", 4, end_us, &snapshot);
    let totals = report.totals();
    assert_eq!(totals.msgs_sent, sent);
    let json = report.to_json();
    assert!(json.contains("\"label\":\"integration\""));
    assert!(report.to_table().contains("telemetry-ac"));
}

#[test]
fn sim_without_recorder_stays_silent() {
    // A plain run must not panic and (trivially) records nothing; this
    // guards the noop default path used by all other tests.
    let pid = ProtocolId::new("telemetry-off");
    let mut sim = lan_sim(4, 1, 72);
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    let spid = pid.clone();
    sim.schedule(0, 0, move |node, out| {
        node.channel_send(&spid, b"quiet".to_vec(), out);
    });
    sim.run();
    assert_eq!(sim.channel_deliveries(2, &pid).len(), 1);
}

#[test]
fn threaded_runtime_reports_traffic() {
    let registry = Arc::new(MetricsRegistry::new());
    let (group, mut handles) =
        ThreadedGroup::spawn_with_recorder(group_keys(4, 1, 73), Some(registry.clone()));
    let pid = ProtocolId::new("telemetry-threads");
    for h in &handles {
        h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    handles[0].send(&pid, b"counted".to_vec());
    for h in handles.iter_mut() {
        assert_eq!(h.receive(&pid).unwrap().data, b"counted");
    }
    group.shutdown();

    let snapshot = registry.snapshot();
    let scope = "telemetry-threads";
    assert!(snapshot.counter(scope, "msgs_sent") > 0);
    assert!(snapshot.counter(scope, "msgs_delivered") > 0);
    assert!(snapshot.counter(scope, "bytes_sent") > 0);
    assert!(
        snapshot.counter(scope, "rounds") > 0,
        "wall-clock runtime derives round counts too"
    );
}
