//! A replicated key-value store: state-machine replication over SINTRA's
//! atomic broadcast channel (the paper's motivating application, §2.5).
//!
//! Each of the 4 servers maintains a local `HashMap`. Clients submit
//! commands (`PUT k v`, `DEL k`) to *any* server; the atomic channel
//! imposes one global order, so all replicas apply the same commands in
//! the same order and end in identical states — even though commands
//! arrive at different servers concurrently.
//!
//! The replication logic is written against the transport-independent
//! [`PartyHandle`]/[`Runtime`] traits, so the same code runs over the
//! in-process threaded runtime or over real loopback TCP sockets with
//! authenticated, reconnecting links (the paper's deployment model).
//!
//! Run with: `cargo run --release --example replicated_kv` (in-process
//! links) or `cargo run --release --example replicated_kv -- --tcp`
//! (real 127.0.0.1 sockets). Add `--metrics` to serve a live
//! Prometheus-style scrape endpoint per replica and keep the group up
//! for a while after convergence — point `curl` or `sintra-top` at the
//! printed addresses. Add `--trace-dir DIR` to stream every party's
//! causal trace into rotating `sintra-trace-*.jsonl` files there, ready
//! for `sintra-prof profile DIR`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use sintra::crypto::dealer::{deal, DealerConfig, PartyKeys};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::tcp::{TcpConfig, TcpGroup};
use sintra::runtime::threaded::ThreadedGroup;
use sintra::runtime::{ObservabilityConfig, PartyHandle, Runtime};
use sintra::ProtocolId;

/// The replicated state machine: a sorted map plus a command log length.
#[derive(Debug, Default, PartialEq, Eq)]
struct KvStore {
    map: BTreeMap<String, String>,
    applied: usize,
}

impl KvStore {
    /// Applies one ordered command.
    fn apply(&mut self, command: &str) {
        let mut parts = command.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("PUT"), Some(k), Some(v)) => {
                self.map.insert(k.to_string(), v.to_string());
            }
            (Some("DEL"), Some(k), _) => {
                self.map.remove(k);
            }
            _ => eprintln!("ignoring malformed command: {command}"),
        }
        self.applied += 1;
    }
}

fn drive_replica<H: PartyHandle>(
    server: &mut H,
    channel: &ProtocolId,
    expected_commands: usize,
) -> KvStore {
    let mut store = KvStore::default();
    while store.applied < expected_commands {
        let Some(payload) = server.receive(channel) else {
            break;
        };
        store.apply(&String::from_utf8_lossy(&payload.data));
    }
    store
}

/// The whole scenario, transport-agnostic: create the channel, submit
/// commands through different servers, drive every replica to the same
/// final state, shut the group down.
fn run_scenario<R: Runtime>(
    group: R,
    mut servers: Vec<R::Handle>,
    n: usize,
    linger: Option<Duration>,
) {
    let channel = ProtocolId::new("kv-store");
    for s in &servers {
        s.create_atomic_channel(channel.clone(), AtomicChannelConfig::default());
    }

    // Clients hit different servers concurrently — including two writes
    // to the same key through different servers, which total order must
    // resolve identically everywhere.
    let commands: Vec<(usize, &str)> = vec![
        (0, "PUT motd welcome"),
        (1, "PUT balance:alice 100"),
        (2, "PUT balance:bob 250"),
        (3, "PUT motd maintenance-window-sunday"),
        (0, "DEL balance:bob"),
        (1, "PUT balance:alice 175"),
    ];
    for (server, cmd) in &commands {
        servers[*server].send(&channel, cmd.as_bytes().to_vec());
    }

    // Drive each replica until it has applied every command.
    let stores: Vec<KvStore> = servers
        .iter_mut()
        .map(|s| drive_replica(s, &channel, commands.len()))
        .collect();

    println!("replica 0 final state:");
    for (k, v) in &stores[0].map {
        println!("  {k} = {v}");
    }
    for (i, store) in stores.iter().enumerate().skip(1) {
        assert_eq!(store, &stores[0], "replica {i} diverged!");
    }
    println!("\nall {n} replicas converged to the same state ✓");
    println!(
        "(note: the motd and balance:alice keys were written through different\n servers — atomic broadcast decided one winner for every replica)"
    );

    if let Some(window) = linger {
        println!(
            "\nserving metrics for another {}s — scrape the addresses above",
            window.as_secs()
        );
        std::thread::sleep(window);
    }
    group.shutdown();
}

/// The value following `flag` on the command line, if present.
fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let use_tcp = std::env::args().any(|a| a == "--tcp");
    let use_metrics = std::env::args().any(|a| a == "--metrics");
    let trace_dir = flag_value("--trace-dir");
    let (n, t) = (4, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let keys: Vec<Arc<PartyKeys>> = deal(&DealerConfig::small(n, t), &mut rng)?
        .into_iter()
        .map(Arc::new)
        .collect();

    // With --metrics the group stays up after convergence so there is
    // time to point curl or sintra-top at the scrape endpoints.
    let linger = use_metrics.then(|| Duration::from_secs(15));
    // Observability config: metrics and/or streaming traces, composable.
    let observability = if use_metrics || trace_dir.is_some() {
        let mut obs = if use_metrics {
            ObservabilityConfig::with_metrics()
        } else {
            ObservabilityConfig::default()
        };
        if let Some(dir) = &trace_dir {
            obs.trace = Some(sintra::telemetry::TraceStreamConfig::into_dir(dir));
        }
        Some(obs)
    } else {
        None
    };
    if use_tcp {
        let config = TcpConfig {
            observability,
            ..TcpConfig::default()
        };
        let (group, servers) = TcpGroup::spawn_with(keys, config, None)?;
        println!("replicas listening on real loopback sockets:");
        for (i, addr) in group.addrs().iter().enumerate() {
            println!("  replica {i}: {addr}");
        }
        for (i, addr) in group.metrics_addrs().iter().enumerate() {
            println!("  replica {i} metrics: http://{addr}/metrics");
        }
        println!();
        run_scenario(group, servers, n, linger);
    } else {
        let (group, servers) = ThreadedGroup::spawn_observable(keys, None, observability);
        for (i, addr) in group.metrics_addrs().iter().enumerate() {
            println!("  replica {i} metrics: http://{addr}/metrics");
        }
        run_scenario(group, servers, n, linger);
    }
    if let Some(dir) = &trace_dir {
        println!(
            "\nstreaming traces written to {dir}/ — analyze with:\n  sintra-prof profile {dir}"
        );
    }
    Ok(())
}
