//! A distributed randomness beacon from the threshold common coin.
//!
//! The Cachin–Kursawe–Shoup coin at the bottom of SINTRA's stack is a
//! distributed pseudorandom function: for any agreed-upon name, any
//! `t + 1` servers can jointly evaluate it, no `t` servers can predict
//! it, and everyone computes the *same* value. That is precisely a
//! randomness beacon — this example emits one unpredictable 256-bit
//! value per epoch, tolerating a Byzantine server, and shows that a
//! coalition of `t` servers cannot evaluate the beacon on their own.
//!
//! Run with: `cargo run --release --example randomness_beacon`

use rand::SeedableRng;
use sintra::crypto::coin::CoinShare;
use sintra::crypto::dealer::{deal, DealerConfig};
use sintra::crypto::CryptoError;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (4, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let parties = deal(&DealerConfig::small(n, t), &mut rng)?;
    let coin = &parties[0].common.coin;
    println!(
        "beacon group: n = {n}, t = {t}; any {} shares evaluate an epoch\n",
        coin.threshold()
    );

    // --- Epochs: every server contributes a share; any quorum agrees ----
    for epoch in 1u64..=5 {
        let name = format!("beacon/epoch/{epoch}");
        let shares: Vec<CoinShare> = parties
            .iter()
            .map(|p| p.common.coin.release_share(name.as_bytes(), &p.coin_secret))
            .collect();

        // Every server verifies the shares it receives from peers.
        for s in &shares {
            assert!(
                parties[0].common.coin.verify_share(name.as_bytes(), s),
                "share from P{} failed verification",
                s.index
            );
        }

        // Two disjoint quorums must compute the same value.
        let from_01 = coin.assemble(name.as_bytes(), &shares[0..2], 32)?;
        let from_23 = coin.assemble(name.as_bytes(), &shares[2..4], 32)?;
        assert_eq!(from_01, from_23, "beacon value must be quorum-independent");
        println!("epoch {epoch}: {}", hex(&from_01));
    }

    // --- Unpredictability: t shares are not enough ----------------------
    let name = b"beacon/epoch/6";
    let lone_share = parties[3]
        .common
        .coin
        .release_share(name, &parties[3].coin_secret);
    match coin.assemble(name, &[lone_share], 32) {
        Err(CryptoError::NotEnoughShares { needed, got }) => {
            println!(
                "\na coalition of t = {t} server(s) cannot evaluate epoch 6: \
                 needs {needed} shares, has {got} ✓"
            );
        }
        other => panic!("expected NotEnoughShares, got {other:?}"),
    }

    // --- Robustness: a Byzantine share is caught, not absorbed ----------
    let mut forged = parties[2]
        .common
        .coin
        .release_share(name, &parties[2].coin_secret);
    forged.value = sintra::bigint::Ubig::from(4u64); // tampered
    assert!(!coin.verify_share(name, &forged));
    let good = parties[0]
        .common
        .coin
        .release_share(name, &parties[0].coin_secret);
    match coin.assemble(name, &[good, forged], 32) {
        Err(CryptoError::InvalidShare { index: 2 }) => {
            println!("a tampered share from P2 is identified and rejected ✓");
        }
        other => panic!("expected InvalidShare, got {other:?}"),
    }

    println!("\nbeacon demo complete: unpredictable, agreed-upon, robust.");
    Ok(())
}
