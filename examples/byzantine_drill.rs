//! A Byzantine fire drill in the deterministic simulator.
//!
//! Runs the same atomic-broadcast workload three times on a simulated
//! wide-area group (the paper's Internet testbed: Zürich, Tokyo, New
//! York, California):
//!
//! 1. all four servers honest;
//! 2. one server crashed from the start;
//! 3. one server replaced by an equivocating Byzantine sender *and* a
//!    2-second network partition around another server.
//!
//! In every case the surviving honest servers deliver identical
//! sequences — and because the simulator is deterministic, so will your
//! run of this example.
//!
//! Run with: `cargo run --release --example byzantine_drill`

use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::sim::{byzantine::EquivocatingSender, Fault, LinkDecision, Simulation};
use sintra::testbed::setups::{build, Setup};
use sintra::ProtocolId;

/// Builds a fresh simulated Internet group with an atomic channel on
/// every honest party.
fn fresh_sim(seed: u64) -> (Simulation, ProtocolId) {
    // 128-bit demo keys keep the example fast; the mechanics are
    // identical at 1024 bits.
    let testbed = build(
        Setup::Internet,
        128,
        sintra::crypto::thsig::SigFlavor::Multi,
        seed,
    );
    let pid = ProtocolId::new("drill");
    let mut sim = Simulation::new(testbed.keys, testbed.config);
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    (sim, pid)
}

fn workload(sim: &mut Simulation, pid: &ProtocolId, senders: &[usize]) {
    for &party in senders {
        let pid = pid.clone();
        sim.schedule(0, party, move |node, out| {
            for k in 0..3 {
                node.channel_send(&pid, format!("P{party}-msg{k}").into_bytes(), out);
            }
        });
    }
}

fn sequences(sim: &Simulation, pid: &ProtocolId, parties: &[usize]) -> Vec<Vec<String>> {
    parties
        .iter()
        .map(|&p| {
            sim.channel_deliveries(p, pid)
                .iter()
                .map(|(_, payload)| String::from_utf8_lossy(&payload.data).into_owned())
                .collect()
        })
        .collect()
}

fn assert_identical(seqs: &[Vec<String>], scenario: &str) {
    for s in &seqs[1..] {
        assert_eq!(s, &seqs[0], "{scenario}: honest servers diverged!");
    }
    println!(
        "  {} deliveries, identical at every honest server ✓",
        seqs[0].len()
    );
}

fn main() {
    println!("scenario 1: all honest (Zürich + Tokyo + NY sending)");
    let (mut sim, pid) = fresh_sim(1);
    workload(&mut sim, &pid, &[0, 1, 2]);
    let end = sim.run();
    let seqs = sequences(&sim, &pid, &[0, 1, 2, 3]);
    assert_eq!(seqs[0].len(), 9, "all 9 payloads delivered");
    assert_identical(&seqs, "honest");
    println!(
        "  finished at t = {:.2}s virtual, {} messages on the wire\n",
        end as f64 / 1e6,
        sim.stats().messages
    );

    println!("scenario 2: California (P3) crashed from the start");
    let (mut sim, pid) = fresh_sim(2);
    sim.set_fault(3, Fault::Crash { at_us: 0 });
    workload(&mut sim, &pid, &[0, 1, 2]);
    sim.run();
    let seqs = sequences(&sim, &pid, &[0, 1, 2]);
    assert_eq!(seqs[0].len(), 9, "crash of t=1 server is masked");
    assert_identical(&seqs, "crash");
    println!();

    println!("scenario 3: Byzantine equivocator at P3 + partition around Tokyo (P1)");
    let (mut sim, pid) = fresh_sim(3);
    // P3 equivocates on a reliable-broadcast instance it pretends to run
    // (its garbage is ignored by the channel's signature checks), and
    // additionally Tokyo is cut off for the first 2 virtual seconds.
    sim.set_byzantine(
        3,
        Box::new(EquivocatingSender {
            pid: pid.clone(),
            payload_a: b"lie-A".to_vec(),
            payload_b: b"lie-B".to_vec(),
            group_a: vec![0, 1],
            n: 4,
        }),
    );
    sim.set_link_filter(|from, to, t| {
        if (from == 1 || to == 1) && from != to && t < 2_000_000 {
            LinkDecision::DelayUntil(2_000_000)
        } else {
            LinkDecision::Deliver
        }
    });
    workload(&mut sim, &pid, &[0, 2]); // the two reachable honest senders
    sim.schedule(0, 3, |_, _| {}); // trigger the Byzantine actor's on_start
    sim.run();
    let seqs = sequences(&sim, &pid, &[0, 1, 2]);
    assert_eq!(seqs[0].len(), 6);
    assert!(
        seqs[0].iter().all(|m| !m.starts_with("lie")),
        "equivocator's forgeries never delivered"
    );
    assert_identical(&seqs, "byzantine+partition");

    println!("\nall three drills passed — safety held in every scenario.");
}
