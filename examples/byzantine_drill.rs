//! A Byzantine fire drill in the deterministic simulator.
//!
//! Runs the same atomic-broadcast workload three times on a simulated
//! wide-area group (the paper's Internet testbed: Zürich, Tokyo, New
//! York, California):
//!
//! 1. all four servers honest;
//! 2. one server crashed from the start;
//! 3. one server replaced by an equivocating Byzantine sender *and* a
//!    2-second network partition around another server.
//!
//! In every case the surviving honest servers deliver identical
//! sequences — and because the simulator is deterministic, so will your
//! run of this example.
//!
//! Run with: `cargo run --release --example byzantine_drill`
//!
//! With `--dumps <dir>` a fourth drill runs on real loopback TCP: two of
//! the four servers are crashed (beyond the `t = 1` fault budget), the
//! survivors stall, and the flight recorder's stall detector writes
//! state dumps into `<dir>`. The drill then loads the dumps back and
//! prints the "who is waiting on what" analysis — the round trip CI
//! exercises to keep the observability pipeline honest.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use sintra::crypto::dealer::{deal, DealerConfig};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::sim::{byzantine::EquivocatingSender, Fault, LinkDecision, Simulation};
use sintra::runtime::tcp::{TcpConfig, TcpGroup};
use sintra::runtime::{MetricsConfig, ObservabilityConfig, PartyHandle};
use sintra::telemetry::parse_json;
use sintra::testbed::inspect::report;
use sintra::testbed::scrape::scrape;
use sintra::testbed::setups::{build, Setup};
use sintra::testbed::trace_export::validate_dump;
use sintra::ProtocolId;

/// Builds a fresh simulated Internet group with an atomic channel on
/// every honest party.
fn fresh_sim(seed: u64) -> (Simulation, ProtocolId) {
    // 128-bit demo keys keep the example fast; the mechanics are
    // identical at 1024 bits.
    let testbed = build(
        Setup::Internet,
        128,
        sintra::crypto::thsig::SigFlavor::Multi,
        seed,
    );
    let pid = ProtocolId::new("drill");
    let mut sim = Simulation::new(testbed.keys, testbed.config);
    for p in 0..4 {
        sim.node_mut(p)
            .create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    (sim, pid)
}

fn workload(sim: &mut Simulation, pid: &ProtocolId, senders: &[usize]) {
    for &party in senders {
        let pid = pid.clone();
        sim.schedule(0, party, move |node, out| {
            for k in 0..3 {
                node.channel_send(&pid, format!("P{party}-msg{k}").into_bytes(), out);
            }
        });
    }
}

fn sequences(sim: &Simulation, pid: &ProtocolId, parties: &[usize]) -> Vec<Vec<String>> {
    parties
        .iter()
        .map(|&p| {
            sim.channel_deliveries(p, pid)
                .iter()
                .map(|(_, payload)| String::from_utf8_lossy(&payload.data).into_owned())
                .collect()
        })
        .collect()
}

fn assert_identical(seqs: &[Vec<String>], scenario: &str) {
    for s in &seqs[1..] {
        assert_eq!(s, &seqs[0], "{scenario}: honest servers diverged!");
    }
    println!(
        "  {} deliveries, identical at every honest server ✓",
        seqs[0].len()
    );
}

/// Scenario 4 (opt-in): a real TCP group stalled past its fault budget.
/// Crashing two of four servers leaves the survivors short of every
/// `n - t = 3` quorum; the stall detector notices the quiet period and
/// dumps their state, which we then read back and analyse.
fn stall_drill(dump_dir: &std::path::Path, trace_dir: Option<&std::path::Path>) {
    std::fs::create_dir_all(dump_dir).expect("create dump dir");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let keys = deal(&DealerConfig::small(4, 1), &mut rng).expect("dealer");
    let config = TcpConfig {
        observability: Some(ObservabilityConfig {
            quiet: Duration::from_millis(500),
            dump_dir: dump_dir.to_path_buf(),
            metrics: Some(MetricsConfig::default()),
            // The streaming sink coexists with the stall-dump plane:
            // the wedge shows up in the dump *and* in the causal trace.
            trace: trace_dir.map(sintra::telemetry::TraceStreamConfig::into_dir),
            ..ObservabilityConfig::default()
        }),
        ..TcpConfig::default()
    };
    let (group, handles) =
        TcpGroup::spawn_with(keys.into_iter().map(Arc::new).collect(), config, None)
            .expect("bind loopback");
    let pid = ProtocolId::new("stall-drill");
    for h in &handles {
        h.create_atomic_channel(pid.clone(), AtomicChannelConfig::default());
    }
    // Crash P2 and P3 — one more than the t = 1 budget — then submit a
    // payload. Atomic broadcast needs 3 live servers; with 2 it wedges.
    for h in &handles[2..] {
        h.shutdown_server();
        h.sever_links();
    }
    handles[0].send(&pid, b"doomed payload".to_vec());

    let dump_path = dump_dir.join("sintra-dump-0-stall.json");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !dump_path.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "stall detector produced no dump within 60s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The metrics plane must keep answering while the protocol is
    // wedged: the wedge is exactly when an operator reaches for it.
    // Poll rather than assert one scrape — a survivor's retransmit can
    // briefly flip the gauge back before the quiet period re-expires.
    let scrape_addr = group.metrics_addrs()[0];
    let gauge_deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let exposition = scrape(scrape_addr, Duration::from_secs(5)).expect("scrape stalled party");
        if exposition.value("sintra_stalled", &[("party", "0")]) == Some(1.0) {
            break;
        }
        assert!(
            std::time::Instant::now() < gauge_deadline,
            "stall detector's verdict never became visible in the scrape"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("  scrape endpoint answered mid-stall, stalled gauge = 1 ✓");
    // Let the other survivor finish its dump too before reading.
    std::thread::sleep(Duration::from_millis(300));
    group.shutdown();
    assert!(
        scrape(scrape_addr, Duration::from_secs(2)).is_err(),
        "scrape endpoint closes with the group"
    );

    let mut dumped = 0;
    for entry in std::fs::read_dir(dump_dir).expect("read dump dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if !name.starts_with("sintra-dump-") {
            continue;
        }
        let body = std::fs::read_to_string(&path).expect("read dump");
        let dump = parse_json(&body).expect("dump parses");
        validate_dump(&dump).expect("dump is schema-valid");
        print!("  {}", report(&dump).replace('\n', "\n  "));
        println!();
        dumped += 1;
    }
    assert!(dumped >= 1, "at least the sender's dump exists");
    println!("  {dumped} schema-valid dump(s) analysed ✓");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dump_dir = args
        .iter()
        .position(|a| a == "--dumps")
        .map(|i| args.get(i + 1).expect("--dumps needs a directory").clone());
    let trace_dir = args.iter().position(|a| a == "--trace-dir").map(|i| {
        args.get(i + 1)
            .expect("--trace-dir needs a directory")
            .clone()
    });

    println!("scenario 1: all honest (Zürich + Tokyo + NY sending)");
    let (mut sim, pid) = fresh_sim(1);
    workload(&mut sim, &pid, &[0, 1, 2]);
    let end = sim.run();
    let seqs = sequences(&sim, &pid, &[0, 1, 2, 3]);
    assert_eq!(seqs[0].len(), 9, "all 9 payloads delivered");
    assert_identical(&seqs, "honest");
    println!(
        "  finished at t = {:.2}s virtual, {} messages on the wire\n",
        end as f64 / 1e6,
        sim.stats().messages
    );

    println!("scenario 2: California (P3) crashed from the start");
    let (mut sim, pid) = fresh_sim(2);
    sim.set_fault(3, Fault::Crash { at_us: 0 });
    workload(&mut sim, &pid, &[0, 1, 2]);
    sim.run();
    let seqs = sequences(&sim, &pid, &[0, 1, 2]);
    assert_eq!(seqs[0].len(), 9, "crash of t=1 server is masked");
    assert_identical(&seqs, "crash");
    println!();

    println!("scenario 3: Byzantine equivocator at P3 + partition around Tokyo (P1)");
    let (mut sim, pid) = fresh_sim(3);
    // P3 equivocates on a reliable-broadcast instance it pretends to run
    // (its garbage is ignored by the channel's signature checks), and
    // additionally Tokyo is cut off for the first 2 virtual seconds.
    sim.set_byzantine(
        3,
        Box::new(EquivocatingSender {
            pid: pid.clone(),
            payload_a: b"lie-A".to_vec(),
            payload_b: b"lie-B".to_vec(),
            group_a: vec![0, 1],
            n: 4,
        }),
    );
    sim.set_link_filter(|from, to, t| {
        if (from == 1 || to == 1) && from != to && t < 2_000_000 {
            LinkDecision::DelayUntil(2_000_000)
        } else {
            LinkDecision::Deliver
        }
    });
    workload(&mut sim, &pid, &[0, 2]); // the two reachable honest senders
    sim.schedule(0, 3, |_, _| {}); // trigger the Byzantine actor's on_start
    sim.run();
    let seqs = sequences(&sim, &pid, &[0, 1, 2]);
    assert_eq!(seqs[0].len(), 6);
    assert!(
        seqs[0].iter().all(|m| !m.starts_with("lie")),
        "equivocator's forgeries never delivered"
    );
    assert_identical(&seqs, "byzantine+partition");

    if let Some(dir) = dump_dir {
        println!("\nscenario 4: TCP group crashed past its fault budget (2 of 4 down)");
        stall_drill(
            std::path::Path::new(&dir),
            trace_dir.as_deref().map(std::path::Path::new),
        );
        if let Some(traces) = &trace_dir {
            println!(
                "  streaming traces in {traces}/ — inspect with: sintra-prof profile {traces}"
            );
        }
        println!("\nall four drills passed — safety held in every scenario.");
    } else {
        println!("\nall three drills passed — safety held in every scenario.");
    }
}
