//! A sealed-bid auction over the *secure causal* atomic broadcast channel
//! (paper §2.6) — the use case threshold encryption exists for.
//!
//! Bidders encrypt their bids under the group's threshold public key and
//! submit the ciphertexts. The channel fixes each bid's position in the
//! total order *before* any server (or eavesdropper, or `t` colluding
//! servers) can read it — so nobody can observe a rival's bid in flight
//! and outbid it by one dollar. Only after ordering do the servers
//! jointly decrypt (any `t + 1` of them suffice).
//!
//! Run with: `cargo run --release --example sealed_bid_auction`

use std::sync::Arc;

use rand::SeedableRng;
use sintra::crypto::dealer::{deal, DealerConfig};
use sintra::protocols::channel::{AtomicChannelConfig, SecureAtomicChannel};
use sintra::runtime::threaded::ThreadedGroup;
use sintra::{GroupContext, ProtocolId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (4, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1789);
    let keys = deal(&DealerConfig::small(n, t), &mut rng)?;
    // Keep one context around to play the "external client" role: clients
    // only need the *public* channel key to encrypt.
    let client_view = GroupContext::new(Arc::new(keys[0].clone()));
    let (group, mut servers) = ThreadedGroup::spawn(keys.into_iter().map(Arc::new).collect());

    let channel = ProtocolId::new("auction-lot-17");
    for s in &servers {
        s.create_secure_channel(channel.clone(), AtomicChannelConfig::default());
    }

    // --- Bidders encrypt off-platform and submit ciphertexts --------------
    // Each bidder encrypts under the channel public key and hands the
    // ciphertext to some server, which forwards it WITHOUT seeing the bid.
    let bids: &[(&str, u64, usize)] = &[
        ("alice", 4200, 0), // bidder, amount, server they submit through
        ("bob", 3900, 1),
        ("carol", 4350, 2),
        ("dave", 4100, 3),
    ];
    for (bidder, amount, via) in bids {
        let sealed = SecureAtomicChannel::encrypt(
            &client_view,
            &channel,
            format!("{bidder}:{amount}").as_bytes(),
            &mut rng,
        );
        println!(
            "{bidder} submits a sealed bid ({} bytes) via server {via}",
            sealed.len()
        );
        servers[*via].send_ciphertext(&channel, sealed);
    }

    // --- Every server opens the bids in the agreed order ------------------
    let mut winner: Option<(String, u64)> = None;
    let mut reference_order: Option<Vec<String>> = None;
    for (i, server) in servers.iter_mut().enumerate() {
        let mut order = Vec::new();
        for _ in 0..bids.len() {
            let payload = server.receive(&channel).expect("decrypted bid");
            let text = String::from_utf8_lossy(&payload.data).into_owned();
            order.push(text);
        }
        match &reference_order {
            None => {
                println!("\nbids as opened, in the agreed total order:");
                for (rank, bid) in order.iter().enumerate() {
                    println!("  {}. {}", rank + 1, bid);
                }
                // Determine the winner (highest bid; order breaks ties).
                for bid in &order {
                    let (name, amount) = bid.split_once(':').expect("well-formed bid");
                    let amount: u64 = amount.parse().expect("numeric bid");
                    if winner.as_ref().is_none_or(|(_, best)| amount > *best) {
                        winner = Some((name.to_string(), amount));
                    }
                }
                reference_order = Some(order);
            }
            Some(reference) => {
                assert_eq!(&order, reference, "server {i} saw a different order!");
            }
        }
    }

    let (name, amount) = winner.expect("at least one bid");
    println!("\nall servers agree: {name} wins at {amount} ✓");
    println!("(no server could read any bid before its position was fixed)");

    group.shutdown();
    Ok(())
}
