//! Reads flight-recorder dumps and prints a "who is waiting on what"
//! report for each: the stuck instances, the quorums they are missing,
//! and any link-layer backlog — the first thing to look at when a live
//! group stalls.
//!
//! Dumps (`sintra-dump-<party>-<reason>.json`) are written automatically
//! by the stall detector when a server sits on pending work past its
//! quiet period, on protocol invariant violations, and on explicit
//! `request_dump` calls. See the "Debugging a stalled channel" section
//! of DESIGN.md.
//!
//! Run with:
//! `cargo run --release --example sintra_inspect -- sintra-dump-*.json`

use std::process::ExitCode;

use sintra::telemetry::parse_json;
use sintra::testbed::inspect::report;
use sintra::testbed::trace_export::validate_dump;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: sintra_inspect DUMP.json [DUMP.json ...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("== {path}");
        let dump = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|body| parse_json(&body).map_err(|e| e.to_string()))
        {
            Ok(dump) => dump,
            Err(err) => {
                eprintln!("  unreadable dump: {err}");
                failed = true;
                continue;
            }
        };
        if let Err(err) = validate_dump(&dump) {
            eprintln!("  schema violation: {err}");
            failed = true;
            continue;
        }
        print!("{}", report(&dump));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
