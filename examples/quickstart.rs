//! Quickstart: Byzantine fault-tolerant total-order broadcast in a few
//! dozen lines.
//!
//! Spawns a group of 4 SINTRA servers (tolerating 1 Byzantine fault),
//! opens an atomic broadcast channel, has every server concurrently
//! submit payloads, and shows that all servers deliver the *same total
//! order* — the foundation of state-machine replication.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use rand::SeedableRng;
use sintra::crypto::dealer::{deal, DealerConfig};
use sintra::protocols::channel::AtomicChannelConfig;
use sintra::runtime::threaded::ThreadedGroup;
use sintra::telemetry::{MetricsRegistry, RunReport};
use sintra::ProtocolId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Trusted setup -------------------------------------------------
    // A trusted dealer generates all key material once: pairwise MAC keys,
    // RSA signing keys, and shares of the threshold coin / signature /
    // encryption schemes. (128-bit demo keys; use DealerConfig::new for
    // the paper's 1024-bit configuration.)
    let (n, t) = (4, 1);
    println!("dealing keys for n = {n} servers, tolerating t = {t} Byzantine faults...");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2002);
    let keys = deal(&DealerConfig::small(n, t), &mut rng)?;

    // --- 2. Launch the group ----------------------------------------------
    // One OS thread per server; links are HMAC-authenticated channels.
    // A metrics registry collects per-protocol telemetry as the run goes.
    let registry = Arc::new(MetricsRegistry::new());
    let start = std::time::Instant::now();
    let (group, mut servers) = ThreadedGroup::spawn_with_recorder(
        keys.into_iter().map(Arc::new).collect(),
        Some(registry.clone()),
    );

    // --- 3. Open an atomic broadcast channel -------------------------------
    let channel = ProtocolId::new("quickstart");
    for s in &servers {
        s.create_atomic_channel(channel.clone(), AtomicChannelConfig::default());
    }

    // --- 4. Concurrent sends ----------------------------------------------
    // Every server submits two payloads at once; atomic broadcast decides
    // one global order for all of them.
    for (i, s) in servers.iter().enumerate() {
        s.send(&channel, format!("server-{i} says hello").into_bytes());
        s.send(&channel, format!("server-{i} says goodbye").into_bytes());
    }

    // --- 5. Receive and compare orders -------------------------------------
    let total = 2 * n;
    let mut orders: Vec<Vec<String>> = Vec::new();
    for server in servers.iter_mut() {
        let mut order = Vec::new();
        for _ in 0..total {
            let payload = server.receive(&channel).expect("delivery");
            order.push(String::from_utf8_lossy(&payload.data).into_owned());
        }
        orders.push(order);
    }

    println!("\ntotal order as delivered by server 0:");
    for (i, line) in orders[0].iter().enumerate() {
        println!("  {i:2}. {line}");
    }
    for (i, order) in orders.iter().enumerate().skip(1) {
        assert_eq!(order, &orders[0], "server {i} disagreed!");
    }
    println!("\nall {n} servers delivered the same sequence ✓");

    group.shutdown();

    // --- 6. Run report -----------------------------------------------------
    // What did that cost? Message, byte, round, and crypto-work totals per
    // protocol, straight from the recorder the servers reported to.
    let report = RunReport::from_snapshot(
        "quickstart",
        n,
        start.elapsed().as_micros() as u64,
        &registry.snapshot(),
    );
    println!("\n{}", report.to_table());
    Ok(())
}
